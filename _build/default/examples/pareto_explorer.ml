(* Design-space exploration: sweep the area budget over the Pareto
   frontier of a real benchmark (3mm) and compare full Cayman against the
   coupled-only ablation and both baselines — the scenario behind Fig. 6
   of the paper.

     dune exec examples/pareto_explorer.exe [benchmark]
*)

module Hls = Cayman_hls
module Suite = Cayman_suites.Suite

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "3mm" in
  let bench = Suite.find_exn name in
  Printf.printf "exploring %s (%s)\n" bench.Suite.name bench.Suite.suite;
  let a = Core.Cayman.analyze (Suite.compile bench) in
  let methods =
    [ "full", Core.Cayman.gen Hls.Kernel.Heuristic;
      "coupled-only", Core.Cayman.gen Hls.Kernel.Coupled_only;
      "NOVIA", Cayman_baselines.Novia.gen;
      "QsCores", Cayman_baselines.Qscores.gen ]
  in
  let frontiers =
    List.map
      (fun (label, gen) ->
        let frontier, _ =
          Core.Select.select ~gen a.Core.Cayman.ctxs a.Core.Cayman.wpst
            a.Core.Cayman.profile
        in
        label, frontier)
      methods
  in
  Printf.printf "%-8s" "budget";
  List.iter (fun (label, _) -> Printf.printf " %14s" label) frontiers;
  print_newline ();
  List.iter
    (fun budget_pct ->
      let budget =
        float_of_int budget_pct /. 100.0 *. Hls.Tech.cva6_tile_area
      in
      Printf.printf "%6d%%" budget_pct;
      List.iter
        (fun (_, frontier) ->
          let s =
            match Core.Solution.best_under ~budget frontier with
            | Some s -> s
            | None -> Core.Solution.empty
          in
          Printf.printf " %13.2fx"
            (Core.Solution.speedup ~t_all:a.Core.Cayman.t_all s))
        frontiers;
      print_newline ())
    [ 2; 5; 10; 15; 25; 40; 65; 100 ];
  print_newline ();
  print_endline "full Cayman frontier (area ratio, speedup, #accelerators):";
  List.iter
    (fun s ->
      Printf.printf "  %.4f  %7.2fx  %d\n"
        (Core.Report.area_ratio s)
        (Core.Solution.speedup ~t_all:a.Core.Cayman.t_all s)
        (List.length s.Core.Solution.accels))
    (List.assoc "full" frontiers)
