(* Interface specialization: how the choice of processor-accelerator data
   access interface changes a kernel's latency and area, and how the
   scratchpad profitability threshold beta steers the heuristic.

     dune exec examples/interface_tuning.exe
*)

module An = Cayman_analysis
module Hls = Cayman_hls

(* A 2D stencil sweep: every element is read ~5 times per pass, which is
   exactly the reuse pattern that makes a scratchpad pay off. *)
let source =
  {|
const int N = 64;

float grid[N][N]; float next[N][N];

void relax() {
  for (int i = 1; i < N - 1; i++) {
    for (int j = 1; j < N - 1; j++) {
      next[i][j] = 0.25 * (grid[i][j - 1] + grid[i][j + 1]
                           + grid[i - 1][j] + grid[i + 1][j]);
    }
  }
}

int main() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) { grid[i][j] = (float)((i * j) % 17); }
  }
  for (int t = 0; t < 60; t++) { relax(); }
  float s = 0.0;
  for (int i = 0; i < N; i++) { s += next[i][i]; }
  return (int)s;
}
|}

let () =
  let a = Core.Cayman.analyze_source source in
  let ctx = Hashtbl.find a.Core.Cayman.ctxs "relax" in
  (* the outer loop region of relax *)
  let ft = Option.get (An.Wpst.func_tree a.Core.Cayman.wpst "relax") in
  let region = ref None in
  An.Region.iter
    (fun r ->
      if r.An.Region.kind = An.Region.Loop_region && !region = None then
        region := Some r)
    ft.An.Wpst.root;
  let region = Option.get !region in
  print_endline "one configuration per interface policy (pipelined, u=1):";
  List.iter
    (fun mode ->
      let config = { Hls.Kernel.unroll = 1; pipeline = true; mode } in
      match Hls.Kernel.estimate ctx region config with
      | Some p ->
        Printf.printf
          "  %-22s cycles=%10.0f area=%8.0f um^2  C=%d D=%d S=%d\n"
          (Hls.Kernel.mode_to_string mode)
          p.Hls.Kernel.accel_cycles p.Hls.Kernel.area
          p.Hls.Kernel.ifaces.Hls.Kernel.n_coupled
          p.Hls.Kernel.ifaces.Hls.Kernel.n_decoupled
          p.Hls.Kernel.ifaces.Hls.Kernel.n_scratchpad
      | None -> Printf.printf "  %-22s unsynthesizable\n"
                  (Hls.Kernel.mode_to_string mode))
    [ Hls.Kernel.Coupled_only; Hls.Kernel.Decoupled_preferred;
      Hls.Kernel.Scratchpad_preferred; Hls.Kernel.Heuristic ];
  print_endline "\nsweeping the scratchpad threshold beta (heuristic mode):";
  List.iter
    (fun beta ->
      let config =
        { Hls.Kernel.unroll = 1; pipeline = true; mode = Hls.Kernel.Heuristic }
      in
      match Hls.Kernel.estimate ctx region ~beta config with
      | Some p ->
        Printf.printf "  beta=%-5.1f cycles=%10.0f area=%8.0f S=%d D=%d\n"
          beta p.Hls.Kernel.accel_cycles p.Hls.Kernel.area
          p.Hls.Kernel.ifaces.Hls.Kernel.n_scratchpad
          p.Hls.Kernel.ifaces.Hls.Kernel.n_decoupled
      | None -> ())
    [ 1.0; 2.0; 4.0; 8.0; 16.0 ]
