(* Tests for the cache simulator substrate, the DSE module, and the dot
   emitters. *)

module Ir = Cayman_ir
module An = Cayman_analysis
module Sim = Cayman_sim
module Hls = Cayman_hls

(* --- cache --- *)

let test_cache_sequential_locality () =
  (* a pure streaming pass hits on line_words-1 of every line_words *)
  let src =
    {|const int N = 4096;
      float a[N];
      int main() {
        float s = 0.0;
        for (int i = 0; i < N; i++) { a[i] = 1.0; }
        for (int i = 0; i < N; i++) { s += a[i]; }
        return (int)s;
      }|}
  in
  let program = Cayman_frontend.Lower.compile src in
  let res = Sim.Interp.run ~cache_config:Sim.Cache.default_l1 program in
  match res.Sim.Interp.cache_stats with
  | None -> Alcotest.fail "cache stats expected"
  | Some s ->
    Alcotest.(check int) "one access per load/store" 8192 s.Sim.Cache.accesses;
    (* write pass misses every 8th element; read pass misses every 8th
       again (4096 floats exceed the 1024-element cache) *)
    Alcotest.(check int) "misses = 2 * N/8" 1024 s.Sim.Cache.misses;
    Alcotest.(check bool) "hit rate ~ 7/8" true
      (abs_float (Sim.Cache.hit_rate s -. 0.875) < 1e-6)

let test_cache_resident_workload () =
  (* a small array reused many times stays resident after the first pass *)
  let src =
    {|const int N = 64;
      float a[N];
      int main() {
        float s = 0.0;
        for (int t = 0; t < 100; t++) {
          for (int i = 0; i < N; i++) { s += a[i]; }
        }
        return (int)s;
      }|}
  in
  let program = Cayman_frontend.Lower.compile src in
  let res = Sim.Interp.run ~cache_config:Sim.Cache.default_l1 program in
  match res.Sim.Interp.cache_stats with
  | None -> Alcotest.fail "cache stats expected"
  | Some s ->
    Alcotest.(check int) "cold misses only" (64 / 8) s.Sim.Cache.misses

let test_cache_thrash_with_tiny_cache () =
  (* a direct-mapped 1-set cache thrashes on alternating arrays *)
  let src =
    {|const int N = 256;
      float a[N]; float b[N];
      int main() {
        float s = 0.0;
        for (int i = 0; i < N; i++) { s += a[i] + b[i]; }
        return (int)s;
      }|}
  in
  let program = Cayman_frontend.Lower.compile src in
  let tiny =
    { Sim.Cache.line_words = 8; sets = 1; ways = 1; hit_cycles = 1;
      miss_cycles = 10 }
  in
  let res = Sim.Interp.run ~cache_config:tiny program in
  (match res.Sim.Interp.cache_stats with
   | Some s ->
     (* a[i] and b[i] map to the same single set: every access misses on
        line boundaries and conflicts in between *)
     Alcotest.(check bool) "tiny cache thrashes" true
       (Sim.Cache.hit_rate s < 0.2)
   | None -> Alcotest.fail "cache stats expected");
  (* avg cycles sit between hit and miss cost *)
  (match res.Sim.Interp.cache_stats with
   | Some s ->
     let avg = Sim.Cache.avg_cycles tiny s in
     Alcotest.(check bool) "avg in range" true (avg >= 1.0 && avg <= 10.0)
   | None -> ())

let test_cache_rejects_bad_geometry () =
  let program = Cayman_frontend.Lower.compile "int main() { return 0; }" in
  let bad = { Sim.Cache.default_l1 with Sim.Cache.sets = 3 } in
  match Sim.Cache.create ~config:bad program with
  | _ -> Alcotest.fail "non-power-of-two sets must be rejected"
  | exception Invalid_argument _ -> ()

let test_cache_off_by_default () =
  let program = Cayman_frontend.Lower.compile "int main() { return 0; }" in
  let res = Sim.Interp.run program in
  Alcotest.(check bool) "no stats without config" true
    (res.Sim.Interp.cache_stats = None)

(* --- DSE --- *)

let setup_kernel () =
  let src =
    {|const int N = 64;
      float a[N]; float b[N];
      void kernel() {
        for (int i = 0; i < N; i++) { b[i] = a[i] * 2.0 + 1.0; }
      }
      int main() {
        for (int i = 0; i < N; i++) { a[i] = 1.0; }
        for (int t = 0; t < 8; t++) { kernel(); }
        return (int)b[0];
      }|}
  in
  let program = Cayman_frontend.Lower.compile src in
  let res = Sim.Interp.run program in
  let ctx =
    Hashtbl.find (Hls.Ctx.for_program program res.Sim.Interp.profile) "kernel"
  in
  let region = ref None in
  An.Region.iter
    (fun r ->
      if r.An.Region.kind = An.Region.Loop_region && !region = None then
        region := Some r)
    (An.Region.pst ctx.Hls.Ctx.func);
  ctx, Option.get !region

let test_dse_explore () =
  let ctx, region = setup_kernel () in
  let points = Hls.Dse.explore ctx region Hls.Dse.default_space in
  Alcotest.(check bool) "several distinct points" true
    (List.length points >= 5);
  (* deduplication: all (cycles, area) pairs unique *)
  let keys =
    List.map
      (fun (p : Hls.Kernel.point) -> p.Hls.Kernel.accel_cycles, p.Hls.Kernel.area)
      points
  in
  Alcotest.(check int) "no duplicates" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_dse_pareto () =
  let ctx, region = setup_kernel () in
  let points = Hls.Dse.explore ctx region Hls.Dse.default_space in
  let front = Hls.Dse.pareto points in
  Alcotest.(check bool) "front non-empty" true (front <> []);
  (* strictly improving cycles along increasing area *)
  let rec ok = function
    | (a : Hls.Kernel.point) :: (b : Hls.Kernel.point) :: rest ->
      a.Hls.Kernel.area <= b.Hls.Kernel.area
      && a.Hls.Kernel.accel_cycles > b.Hls.Kernel.accel_cycles
      && ok (b :: rest)
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "pareto ordered" true (ok front);
  (* every explored point is dominated by some frontier point *)
  Alcotest.(check bool) "front dominates" true
    (List.for_all
       (fun (p : Hls.Kernel.point) ->
         List.exists
           (fun (f : Hls.Kernel.point) ->
             f.Hls.Kernel.area <= p.Hls.Kernel.area
             && f.Hls.Kernel.accel_cycles <= p.Hls.Kernel.accel_cycles)
           front)
       points)

let test_dse_fast_strategy_close () =
  let ctx, region = setup_kernel () in
  match
    Hls.Dse.heuristic_vs_exhaustive ctx region
      ~area:(0.25 *. Hls.Tech.cva6_tile_area)
  with
  | None -> Alcotest.fail "both sides must be feasible"
  | Some (fast, exhaustive) ->
    Alcotest.(check bool) "exhaustive at least as good" true
      (exhaustive <= fast +. 1e-9);
    Alcotest.(check bool) "fast within 2x of exhaustive" true
      (fast <= 2.0 *. exhaustive)

(* --- dot emitters --- *)

let test_dot_outputs () =
  let program =
    Cayman_frontend.Lower.compile
      {|const int N = 8;
        int a[N];
        int main() {
          for (int i = 0; i < N; i++) { a[i] = i; }
          return a[3];
        }|}
  in
  let f = Ir.Program.func_exn program "main" in
  let cfg = An.Dot.cfg f in
  Alcotest.(check bool) "cfg is a digraph" true
    (Testutil.contains cfg "digraph cfg_main");
  List.iter
    (fun (b : Ir.Block.t) ->
      Alcotest.(check bool)
        ("cfg mentions " ^ b.Ir.Block.label)
        true
        (Testutil.contains cfg b.Ir.Block.label))
    f.Ir.Func.blocks;
  let wpst = An.Dot.wpst (An.Wpst.build program) in
  Alcotest.(check bool) "wpst has root" true
    (Testutil.contains wpst "\"root\"");
  Alcotest.(check bool) "wpst has a loop region" true
    (Testutil.contains wpst "loop:");
  let dfg = An.Dot.dfg (Ir.Func.entry f) in
  Alcotest.(check bool) "dfg is a digraph" true
    (Testutil.contains dfg "digraph dfg_")

let tests =
  [ Alcotest.test_case "cache: streaming locality" `Quick
      test_cache_sequential_locality;
    Alcotest.test_case "cache: resident workload" `Quick
      test_cache_resident_workload;
    Alcotest.test_case "cache: tiny cache thrashes" `Quick
      test_cache_thrash_with_tiny_cache;
    Alcotest.test_case "cache: bad geometry rejected" `Quick
      test_cache_rejects_bad_geometry;
    Alcotest.test_case "cache: off by default" `Quick test_cache_off_by_default;
    Alcotest.test_case "dse: explore + dedup" `Quick test_dse_explore;
    Alcotest.test_case "dse: pareto frontier" `Quick test_dse_pareto;
    Alcotest.test_case "dse: fast strategy close" `Quick
      test_dse_fast_strategy_close;
    Alcotest.test_case "dot emitters" `Quick test_dot_outputs ]
