(* Unit tests for the IR: builder, operators, validation, printing. *)

module Ir = Cayman_ir

let reg = Ir.Instr.reg

(* A minimal valid program: main calls f(3) and returns its double. *)
let valid_program () =
  let f =
    let b =
      Ir.Builder.create ~name:"f" ~params:[ reg "x" Ir.Types.I32 ]
        ~ret:(Some Ir.Types.I32)
    in
    let entry = Ir.Builder.add_block ~hint:"entry" b in
    Ir.Builder.set_current b entry;
    let y =
      Ir.Builder.binary b Ir.Op.Add
        (Ir.Instr.Reg (reg "x" Ir.Types.I32))
        (Ir.Instr.Imm_int 1)
    in
    Ir.Builder.terminate b (Ir.Instr.Return (Some (Ir.Instr.Reg y)));
    Ir.Builder.finish b
  in
  let main =
    let b = Ir.Builder.create ~name:"main" ~params:[] ~ret:(Some Ir.Types.I32) in
    let entry = Ir.Builder.add_block ~hint:"entry" b in
    Ir.Builder.set_current b entry;
    let r = Ir.Builder.fresh_reg ~hint:"r" b Ir.Types.I32 in
    Ir.Builder.emit b (Ir.Instr.Call (Some r, "f", [ Ir.Instr.Imm_int 3 ]));
    let d =
      Ir.Builder.binary b Ir.Op.Mul (Ir.Instr.Reg r) (Ir.Instr.Imm_int 2)
    in
    Ir.Builder.terminate b (Ir.Instr.Return (Some (Ir.Instr.Reg d)));
    Ir.Builder.finish b
  in
  Ir.Program.v
    ~globals:[ { Ir.Program.gname = "a"; elem = Ir.Types.F32; dims = [ 8 ] } ]
    ~funcs:[ f; main ] ~main:"main"

let check_valid () =
  match Ir.Validate.check (valid_program ()) with
  | Ok () -> ()
  | Error es ->
    Alcotest.failf "expected valid, got %d errors: %s" (List.length es)
      (Format.asprintf "%a" Ir.Validate.pp_error (List.hd es))

let expect_invalid name p =
  match Ir.Validate.check p with
  | Ok () -> Alcotest.failf "%s: expected validation failure" name
  | Error _ -> ()

(* Build a one-function program around a block list. *)
let program_of_blocks ?(globals = []) ?(params = []) ?ret blocks =
  let main = Ir.Func.v ~name:"main" ~params ~ret ~blocks in
  Ir.Program.v ~globals ~funcs:[ main ] ~main:"main"

let block label instrs term = Ir.Block.v ~label ~instrs ~term

let test_builder_entry_first () =
  let b = Ir.Builder.create ~name:"g" ~params:[] ~ret:None in
  let first = Ir.Builder.add_block ~hint:"one" b in
  let second = Ir.Builder.add_block ~hint:"two" b in
  Ir.Builder.set_current b second;
  Ir.Builder.terminate b (Ir.Instr.Return None);
  Ir.Builder.set_current b first;
  Ir.Builder.terminate b (Ir.Instr.Jump second);
  let f = Ir.Builder.finish b in
  Alcotest.(check string) "entry is the first added block" first
    (Ir.Func.entry f).Ir.Block.label

let test_builder_unterminated () =
  let b = Ir.Builder.create ~name:"g" ~params:[] ~ret:None in
  let _ = Ir.Builder.add_block b in
  (* finish must refuse: the block lacks a terminator *)
  Alcotest.check_raises "unterminated block"
    (Invalid_argument "Builder.finish: block bb0 of g not terminated")
    (fun () -> ignore (Ir.Builder.finish b : Ir.Func.t))

let test_builder_double_terminate () =
  let b = Ir.Builder.create ~name:"g" ~params:[] ~ret:None in
  let l = Ir.Builder.add_block b in
  Ir.Builder.set_current b l;
  Ir.Builder.terminate b (Ir.Instr.Return None);
  (match Ir.Builder.terminate b (Ir.Instr.Return None) with
   | () -> Alcotest.fail "second terminate must raise"
   | exception Invalid_argument _ -> ());
  (match Ir.Builder.emit b (Ir.Instr.Assign (reg "x" Ir.Types.I32, Ir.Instr.Imm_int 0)) with
   | () -> Alcotest.fail "emit after terminator must raise"
   | exception Invalid_argument _ -> ())

let test_missing_main () =
  let p =
    Ir.Program.v ~globals:[] ~funcs:[] ~main:"main"
  in
  expect_invalid "missing main" p

let test_branch_to_unknown () =
  let p =
    program_of_blocks [ block "entry" [] (Ir.Instr.Jump "nowhere") ]
  in
  expect_invalid "branch to unknown label" p

let test_type_mismatch_binary () =
  let r = reg "x" Ir.Types.I32 in
  let p =
    program_of_blocks
      [ block "entry"
          [ Ir.Instr.Binary (r, Ir.Op.Fadd, Ir.Instr.Imm_int 1, Ir.Instr.Imm_int 2) ]
          (Ir.Instr.Return None) ]
  in
  expect_invalid "fadd on ints" p

let test_branch_condition_not_bool () =
  let p =
    program_of_blocks
      [ block "entry" []
          (Ir.Instr.Branch (Ir.Instr.Imm_int 1, "entry", "entry")) ]
  in
  expect_invalid "int branch condition" p

let test_unknown_global () =
  let r = reg "x" Ir.Types.F32 in
  let p =
    program_of_blocks
      [ block "entry"
          [ Ir.Instr.Load (r, { Ir.Instr.base = "ghost"; index = Ir.Instr.Imm_int 0 }) ]
          (Ir.Instr.Return None) ]
  in
  expect_invalid "unknown global" p

let test_load_type_mismatch () =
  let r = reg "x" Ir.Types.I32 in
  let g = { Ir.Program.gname = "a"; elem = Ir.Types.F32; dims = [ 4 ] } in
  let p =
    program_of_blocks ~globals:[ g ]
      [ block "entry"
          [ Ir.Instr.Load (r, { Ir.Instr.base = "a"; index = Ir.Instr.Imm_int 0 }) ]
          (Ir.Instr.Return None) ]
  in
  expect_invalid "int load from float array" p

let test_register_retyped () =
  let p =
    program_of_blocks
      [ block "entry"
          [ Ir.Instr.Assign (reg "x" Ir.Types.I32, Ir.Instr.Imm_int 0);
            Ir.Instr.Assign (reg "x" Ir.Types.F32, Ir.Instr.Imm_float 0.0) ]
          (Ir.Instr.Return None) ]
  in
  expect_invalid "register used at two types" p

let test_read_before_write () =
  let x = reg "x" Ir.Types.I32 in
  let y = reg "y" Ir.Types.I32 in
  let p =
    program_of_blocks
      [ block "entry"
          [ Ir.Instr.Assign (y, Ir.Instr.Reg x) ]
          (Ir.Instr.Return None) ]
  in
  expect_invalid "read before write" p

let test_read_before_write_one_path () =
  (* x defined on the then-path only; the join reads it. *)
  let c = reg "c" Ir.Types.Bool in
  let x = reg "x" Ir.Types.I32 in
  let y = reg "y" Ir.Types.I32 in
  let p =
    program_of_blocks
      [ block "entry"
          [ Ir.Instr.Compare (c, Ir.Op.Eq, Ir.Instr.Imm_int 0, Ir.Instr.Imm_int 0) ]
          (Ir.Instr.Branch (Ir.Instr.Reg c, "yes", "join"));
        block "yes"
          [ Ir.Instr.Assign (x, Ir.Instr.Imm_int 1) ]
          (Ir.Instr.Jump "join");
        block "join"
          [ Ir.Instr.Assign (y, Ir.Instr.Reg x) ]
          (Ir.Instr.Return None) ]
  in
  expect_invalid "maybe-uninitialized at join" p

let test_defined_on_all_paths_ok () =
  let c = reg "c" Ir.Types.Bool in
  let x = reg "x" Ir.Types.I32 in
  let y = reg "y" Ir.Types.I32 in
  let p =
    program_of_blocks
      [ block "entry"
          [ Ir.Instr.Compare (c, Ir.Op.Eq, Ir.Instr.Imm_int 0, Ir.Instr.Imm_int 0) ]
          (Ir.Instr.Branch (Ir.Instr.Reg c, "yes", "no"));
        block "yes"
          [ Ir.Instr.Assign (x, Ir.Instr.Imm_int 1) ]
          (Ir.Instr.Jump "join");
        block "no"
          [ Ir.Instr.Assign (x, Ir.Instr.Imm_int 2) ]
          (Ir.Instr.Jump "join");
        block "join"
          [ Ir.Instr.Assign (y, Ir.Instr.Reg x) ]
          (Ir.Instr.Return None) ]
  in
  match Ir.Validate.check p with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "defined on all paths should validate"

let test_call_arity () =
  let p = valid_program () in
  let broken_main =
    Ir.Func.v ~name:"main" ~params:[] ~ret:(Some Ir.Types.I32)
      ~blocks:
        [ block "entry"
            [ Ir.Instr.Call (Some (reg "r" Ir.Types.I32), "f", []) ]
            (Ir.Instr.Return (Some (Ir.Instr.Imm_int 0))) ]
  in
  let p =
    Ir.Program.v ~globals:p.Ir.Program.globals
      ~funcs:[ Ir.Program.func_exn p "f"; broken_main ]
      ~main:"main"
  in
  expect_invalid "arity mismatch" p

let test_duplicate_labels () =
  let p =
    program_of_blocks
      [ block "entry" [] (Ir.Instr.Jump "entry");
        block "entry" [] (Ir.Instr.Return None) ]
  in
  expect_invalid "duplicate labels" p

let test_printer_shapes () =
  let p = valid_program () in
  let s = Ir.Program.to_string p in
  List.iter
    (fun needle ->
      if not (Testutil.contains s needle) then
        Alcotest.failf "printer output missing %S in:\n%s" needle s)
    [ "func f"; "func main"; "global f32 a[8]"; "return" ]

let test_instr_defs_uses () =
  let x = reg "x" Ir.Types.I32 and y = reg "y" Ir.Types.I32 in
  let i = Ir.Instr.Binary (x, Ir.Op.Add, Ir.Instr.Reg y, Ir.Instr.Imm_int 1) in
  Alcotest.(check (option string)) "def" (Some "x")
    (Option.map (fun (r : Ir.Instr.reg) -> r.Ir.Instr.id) (Ir.Instr.def i));
  Alcotest.(check (list string)) "uses" [ "y" ]
    (List.map (fun (r : Ir.Instr.reg) -> r.Ir.Instr.id) (Ir.Instr.uses i));
  let st =
    Ir.Instr.Store
      ({ Ir.Instr.base = "a"; index = Ir.Instr.Reg x }, Ir.Instr.Reg y)
  in
  Alcotest.(check (list string)) "store uses" [ "x"; "y" ]
    (List.map (fun (r : Ir.Instr.reg) -> r.Ir.Instr.id) (Ir.Instr.uses st));
  Alcotest.(check bool) "store has no def" true (Ir.Instr.def st = None)

let test_unit_kinds_cover_ops () =
  (* every binary/compare/unary op maps to some datapath unit *)
  let bins =
    [ Ir.Op.Add; Ir.Op.Sub; Ir.Op.Mul; Ir.Op.Div; Ir.Op.Rem; Ir.Op.And;
      Ir.Op.Or; Ir.Op.Xor; Ir.Op.Shl; Ir.Op.Shr; Ir.Op.Fadd; Ir.Op.Fsub;
      Ir.Op.Fmul; Ir.Op.Fdiv ]
  in
  List.iter
    (fun op ->
      let k = Ir.Op.unit_of_bin op in
      Alcotest.(check bool)
        (Ir.Op.bin_to_string op ^ " has a unit kind")
        true
        (List.mem k Ir.Op.all_unit_kinds))
    bins

let tests =
  [ Alcotest.test_case "valid program validates" `Quick check_valid;
    Alcotest.test_case "builder entry is first block" `Quick
      test_builder_entry_first;
    Alcotest.test_case "builder rejects unterminated block" `Quick
      test_builder_unterminated;
    Alcotest.test_case "builder rejects double terminate" `Quick
      test_builder_double_terminate;
    Alcotest.test_case "missing main rejected" `Quick test_missing_main;
    Alcotest.test_case "branch to unknown label rejected" `Quick
      test_branch_to_unknown;
    Alcotest.test_case "fadd on ints rejected" `Quick test_type_mismatch_binary;
    Alcotest.test_case "int branch condition rejected" `Quick
      test_branch_condition_not_bool;
    Alcotest.test_case "unknown global rejected" `Quick test_unknown_global;
    Alcotest.test_case "load type mismatch rejected" `Quick
      test_load_type_mismatch;
    Alcotest.test_case "register retyping rejected" `Quick test_register_retyped;
    Alcotest.test_case "read before write rejected" `Quick
      test_read_before_write;
    Alcotest.test_case "one-path definition rejected" `Quick
      test_read_before_write_one_path;
    Alcotest.test_case "all-path definition accepted" `Quick
      test_defined_on_all_paths_ok;
    Alcotest.test_case "call arity mismatch rejected" `Quick test_call_arity;
    Alcotest.test_case "duplicate labels rejected" `Quick test_duplicate_labels;
    Alcotest.test_case "printer mentions program parts" `Quick
      test_printer_shapes;
    Alcotest.test_case "instr defs and uses" `Quick test_instr_defs_uses;
    Alcotest.test_case "unit kinds cover all binops" `Quick
      test_unit_kinds_cover_ops ]
