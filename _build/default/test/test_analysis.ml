(* Tests for the CFG analyses: dominance, loops, SESE regions / PST,
   wPST, liveness. *)

module Ir = Cayman_ir
module An = Cayman_analysis

(* A diamond CFG with a loop around it:
     entry -> head
     head -> a | exit
     a -> b | c ;  b -> join ; c -> join ; join -> head (latch)
*)
let diamond_loop_func () =
  let reg = Ir.Instr.reg in
  let c = reg "c" Ir.Types.Bool in
  let i = reg "i" Ir.Types.I32 in
  let block label instrs term = Ir.Block.v ~label ~instrs ~term in
  Ir.Func.v ~name:"main" ~params:[] ~ret:None
    ~blocks:
      [ block "entry"
          [ Ir.Instr.Assign (i, Ir.Instr.Imm_int 0) ]
          (Ir.Instr.Jump "head");
        block "head"
          [ Ir.Instr.Compare (c, Ir.Op.Lt, Ir.Instr.Reg i, Ir.Instr.Imm_int 10) ]
          (Ir.Instr.Branch (Ir.Instr.Reg c, "a", "exit"));
        block "a"
          [ Ir.Instr.Compare (c, Ir.Op.Eq, Ir.Instr.Reg i, Ir.Instr.Imm_int 3) ]
          (Ir.Instr.Branch (Ir.Instr.Reg c, "b", "cc"));
        block "b" [] (Ir.Instr.Jump "join");
        block "cc" [] (Ir.Instr.Jump "join");
        block "join"
          [ Ir.Instr.Binary (i, Ir.Op.Add, Ir.Instr.Reg i, Ir.Instr.Imm_int 1) ]
          (Ir.Instr.Jump "head");
        block "exit" [] (Ir.Instr.Return None) ]

let test_dominators () =
  let f = diamond_loop_func () in
  let dom = An.Dominance.dominators f in
  let idom l = An.Dominance.idom dom l in
  Alcotest.(check (option string)) "idom head" (Some "entry") (idom "head");
  Alcotest.(check (option string)) "idom a" (Some "head") (idom "a");
  Alcotest.(check (option string)) "idom b" (Some "a") (idom "b");
  Alcotest.(check (option string)) "idom join" (Some "a") (idom "join");
  Alcotest.(check (option string)) "idom exit" (Some "head") (idom "exit");
  Alcotest.(check (option string)) "entry has no idom" None (idom "entry");
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all (An.Dominance.dominates dom "entry") (Ir.Func.labels f));
  Alcotest.(check bool) "dominance is reflexive" true
    (An.Dominance.dominates dom "a" "a");
  Alcotest.(check bool) "b does not dominate join" false
    (An.Dominance.dominates dom "b" "join")

let test_postdominators () =
  let f = diamond_loop_func () in
  let pdom = An.Dominance.postdominators f in
  Alcotest.(check bool) "exit postdominates head" true
    (An.Dominance.dominates pdom "exit" "head");
  Alcotest.(check bool) "join postdominates a" true
    (An.Dominance.dominates pdom "join" "a");
  Alcotest.(check bool) "b does not postdominate a" false
    (An.Dominance.dominates pdom "b" "a")

let test_natural_loops () =
  let f = diamond_loop_func () in
  let dom = An.Dominance.dominators f in
  let loops = An.Loops.find f dom in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check string) "header" "head" l.An.Loops.header;
  Alcotest.(check (list string)) "latches" [ "join" ] l.An.Loops.latches;
  Alcotest.(check int) "loop blocks" 5
    (An.Loops.String_set.cardinal l.An.Loops.blocks);
  Alcotest.(check (option string)) "preheader" (Some "entry")
    l.An.Loops.preheader;
  Alcotest.(check bool) "exit edge head->exit" true
    (List.mem ("head", "exit") l.An.Loops.exits);
  Alcotest.(check bool) "innermost" true (An.Loops.is_innermost loops l)

let test_nested_loops () =
  let _, res, program =
    Testutil.compile_run
      {|const int N = 4;
        int a[N];
        int main() {
          for (int i = 0; i < N; i++) {
            for (int j = 0; j < N; j++) { a[j] = i + j; }
          }
          return a[0];
        }|}
  in
  ignore res;
  let f = Ir.Program.func_exn program "main" in
  let dom = An.Dominance.dominators f in
  let loops = An.Loops.find f dom in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let inner =
    List.find (fun l -> An.Loops.is_innermost loops l) loops
  in
  let outer =
    List.find (fun l -> not (An.Loops.is_innermost loops l)) loops
  in
  Alcotest.(check (option string)) "inner parent" (Some outer.An.Loops.header)
    inner.An.Loops.parent;
  Alcotest.(check int) "outer depth" 1 (An.Loops.depth loops outer);
  Alcotest.(check int) "inner depth" 2 (An.Loops.depth loops inner)

(* PST invariants checked on every suite benchmark's functions:
   1. children of a region are disjoint and contained in the parent;
   2. every block of a region is covered by exactly one child (partition),
      counting bb leaves;
   3. ids are unique. *)
let check_pst_invariants (f : Ir.Func.t) =
  let root = An.Region.pst f in
  let ids = Hashtbl.create 64 in
  An.Region.iter
    (fun r ->
      if Hashtbl.mem ids r.An.Region.id then
        Alcotest.failf "duplicate region id %d in %s" r.An.Region.id
          f.Ir.Func.name;
      Hashtbl.replace ids r.An.Region.id ())
    root;
  An.Region.iter
    (fun r ->
      match r.An.Region.kind with
      | An.Region.Basic_block -> ()
      | An.Region.Whole_function | An.Region.Loop_region | An.Region.Cond_region ->
        let covered = ref An.Region.String_set.empty in
        List.iter
          (fun c ->
            if
              not
                (An.Region.String_set.subset c.An.Region.blocks
                   r.An.Region.blocks)
            then
              Alcotest.failf "%s: child %s escapes parent %s" f.Ir.Func.name
                (An.Region.name c) (An.Region.name r);
            if
              not
                (An.Region.String_set.is_empty
                   (An.Region.String_set.inter !covered c.An.Region.blocks))
            then
              Alcotest.failf "%s: overlapping children under %s"
                f.Ir.Func.name (An.Region.name r);
            covered := An.Region.String_set.union !covered c.An.Region.blocks)
          r.An.Region.children;
        if not (An.Region.String_set.equal !covered r.An.Region.blocks) then
          Alcotest.failf "%s: children of %s do not cover it" f.Ir.Func.name
            (An.Region.name r))
    root

let test_pst_invariants_suite () =
  List.iter
    (fun (b : Cayman_suites.Suite.benchmark) ->
      let program = Cayman_suites.Suite.compile b in
      List.iter check_pst_invariants program.Ir.Program.funcs)
    Cayman_suites.Suite.all

let test_pst_loop_kinds () =
  let program =
    Cayman_frontend.Lower.compile
      {|const int N = 4;
        int a[N];
        int main() {
          for (int i = 0; i < N; i++) { a[i] = i; }
          if (a[0] > 1) { a[1] = 0; } else { a[2] = 0; }
          return a[1];
        }|}
  in
  let f = Ir.Program.func_exn program "main" in
  let root = An.Region.pst f in
  let kinds = ref [] in
  An.Region.iter (fun r -> kinds := r.An.Region.kind :: !kinds) root;
  Alcotest.(check bool) "has a loop region" true
    (List.mem An.Region.Loop_region !kinds);
  Alcotest.(check bool) "has a cond region" true
    (List.mem An.Region.Cond_region !kinds);
  Alcotest.(check bool) "has bb regions" true
    (List.mem An.Region.Basic_block !kinds)

let test_wpst_reachability () =
  let program =
    Cayman_frontend.Lower.compile
      {|int used() { return 1; }
        int dead() { return 2; }
        int main() { return used(); }|}
  in
  let names = An.Wpst.reachable_funcs program in
  Alcotest.(check (list string)) "main first, dead excluded"
    [ "main"; "used" ] names;
  let wpst = An.Wpst.build program in
  Alcotest.(check int) "two function trees" 2 (List.length wpst.An.Wpst.funcs);
  Alcotest.(check bool) "region lookup works" true
    (An.Wpst.region wpst { An.Wpst.vfunc = "main"; vid = 0 } <> None)

let test_liveness () =
  let f = diamond_loop_func () in
  let live = An.Liveness.compute f in
  (* i is live around the loop: live into head, a, join. *)
  List.iter
    (fun label ->
      Alcotest.(check bool)
        ("i live into " ^ label)
        true
        (An.Liveness.String_set.mem "i" (An.Liveness.live_in live label)))
    [ "head"; "a"; "join" ];
  Alcotest.(check bool) "i dead into exit" false
    (An.Liveness.String_set.mem "i" (An.Liveness.live_in live "exit"));
  Alcotest.(check bool) "c not live into entry" false
    (An.Liveness.String_set.mem "c" (An.Liveness.live_in live "entry"))

(* Dominance sanity on every suite benchmark: entry dominates all
   reachable blocks; idom depth decreases. *)
let test_dominance_suite_properties () =
  List.iter
    (fun name ->
      let b = Cayman_suites.Suite.find_exn name in
      let program = Cayman_suites.Suite.compile b in
      List.iter
        (fun (f : Ir.Func.t) ->
          let dom = An.Dominance.dominators f in
          let entry = (Ir.Func.entry f).Ir.Block.label in
          List.iter
            (fun l ->
              if An.Dominance.reachable dom l then begin
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s entry dominates %s" name
                     f.Ir.Func.name l)
                  true
                  (An.Dominance.dominates dom entry l);
                match An.Dominance.idom dom l with
                | Some p ->
                  Alcotest.(check bool) "idom strictly dominates" true
                    (An.Dominance.dominates dom p l && not (String.equal p l))
                | None -> ()
              end)
            (Ir.Func.labels f))
        program.Ir.Program.funcs)
    [ "3mm"; "nw"; "zip-test"; "fft" ]

let tests =
  [ Alcotest.test_case "dominators on diamond loop" `Quick test_dominators;
    Alcotest.test_case "postdominators" `Quick test_postdominators;
    Alcotest.test_case "natural loop detection" `Quick test_natural_loops;
    Alcotest.test_case "nested loop structure" `Quick test_nested_loops;
    Alcotest.test_case "PST invariants on all 28 benchmarks" `Slow
      test_pst_invariants_suite;
    Alcotest.test_case "PST region kinds" `Quick test_pst_loop_kinds;
    Alcotest.test_case "wPST reachability" `Quick test_wpst_reachability;
    Alcotest.test_case "liveness on diamond loop" `Quick test_liveness;
    Alcotest.test_case "dominance properties on benchmarks" `Quick
      test_dominance_suite_properties ]
