(* Tests for the Verilog netlist backend: structural consistency with the
   accelerator model, well-formed output, determinism. *)

module Ir = Cayman_ir
module An = Cayman_analysis
module Sim = Cayman_sim
module Hls = Cayman_hls

let mac_src =
  {|const int N = 64;
    float a[N]; float b[N]; float out[1];
    void kernel() {
      float acc = 0.0;
      for (int i = 0; i < N; i++) { acc += a[i] * b[i]; }
      out[0] = acc;
    }
    int main() {
      for (int i = 0; i < N; i++) { a[i] = 1.0; b[i] = 0.5; }
      for (int t = 0; t < 4; t++) { kernel(); }
      return (int)out[0];
    }|}

let setup src fname =
  let program = Cayman_frontend.Lower.compile src in
  let res = Sim.Interp.run program in
  let ctxs = Hls.Ctx.for_program program res.Sim.Interp.profile in
  let ctx = Hashtbl.find ctxs fname in
  let root = An.Region.pst ctx.Hls.Ctx.func in
  let region = ref None in
  An.Region.iter
    (fun r ->
      if r.An.Region.kind = An.Region.Loop_region && !region = None then
        region := Some r)
    root;
  ctx, Option.get !region

let config u =
  { Hls.Kernel.unroll = u; pipeline = true; mode = Hls.Kernel.Heuristic }

let netlist_exn ctx region cfg =
  match Hls.Netlist.of_kernel ctx region cfg with
  | Some n -> n
  | None -> Alcotest.fail "netlist generation failed"

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i acc =
    if i + nn > nh then acc
    else if String.equal (String.sub hay i nn) needle then scan (i + 1) (acc + 1)
    else scan (i + 1) acc
  in
  scan 0 0

let test_basic_structure () =
  let ctx, region = setup mac_src "kernel" in
  let n = netlist_exn ctx region (config 1) in
  let v = n.Hls.Netlist.verilog in
  Alcotest.(check int) "one module" 1 (count_substring v "module ");
  Alcotest.(check int) "one endmodule" 1 (count_substring v "endmodule");
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (Testutil.contains v needle))
    [ "input  wire clk"; "output reg  done"; "S_IDLE"; "S_DONE";
      "cayman_float_mul"; "cayman_float_add"; "always @(posedge clk)";
      "case (state)" ]

let test_counts_match_model () =
  let ctx, region = setup mac_src "kernel" in
  List.iter
    (fun u ->
      let cfg = config u in
      let n = netlist_exn ctx region cfg in
      match Hls.Kernel.estimate ctx region cfg with
      | None -> Alcotest.fail "estimate failed"
      | Some p ->
        (* compute instances in the netlist = modelled unit instances
           (the MAC loop has a carried dep, so u collapses to 1 and the
           comparison is exact for all u) *)
        let model_units =
          List.fold_left (fun acc (_, c) -> acc + c) 0 p.Hls.Kernel.units
        in
        Alcotest.(check int)
          (Printf.sprintf "u=%d: instances = modelled units" u)
          model_units n.Hls.Netlist.stats.Hls.Netlist.n_compute;
        let model_mem =
          p.Hls.Kernel.ifaces.Hls.Kernel.n_coupled
          + p.Hls.Kernel.ifaces.Hls.Kernel.n_decoupled
          + p.Hls.Kernel.ifaces.Hls.Kernel.n_scratchpad
        in
        Alcotest.(check int)
          (Printf.sprintf "u=%d: mem instances = modelled interfaces" u)
          model_mem n.Hls.Netlist.stats.Hls.Netlist.n_mem)
    [ 1; 4 ]

let test_unroll_replicates_instances () =
  (* a dependency-free loop: u=4 must emit 4x the body instances *)
  let src =
    {|const int N = 64;
      float a[N]; float b[N];
      void kernel() {
        for (int i = 0; i < N; i++) { b[i] = a[i] * 2.0 + 1.0; }
      }
      int main() {
        for (int i = 0; i < N; i++) { a[i] = 1.0; }
        for (int t = 0; t < 4; t++) { kernel(); }
        return (int)b[0];
      }|}
  in
  let ctx, region = setup src "kernel" in
  let n1 = netlist_exn ctx region (config 1) in
  let n4 = netlist_exn ctx region (config 4) in
  let fmul v = count_substring v "cayman_float_mul u_" in
  Alcotest.(check int) "4x fmul instances"
    (4 * fmul n1.Hls.Netlist.verilog)
    (fmul n4.Hls.Netlist.verilog);
  Alcotest.(check bool) "replica suffixes present" true
    (Testutil.contains n4.Hls.Netlist.verilog "_u3_")

let test_scratchpad_and_dma_emitted () =
  (* a kernel with heavy reuse gets scratchpad banks + a DMA engine *)
  let src =
    {|const int N = 24;
      float A[N][N]; float o[1];
      void kernel() {
        float acc = 0.0;
        for (int r = 0; r < 50; r++) {
          for (int i = 0; i < N; i++) {
            for (int j = 0; j < N; j++) { acc += A[i][j]; }
          }
        }
        o[0] = acc;
      }
      int main() {
        for (int i = 0; i < N; i++) {
          for (int j = 0; j < N; j++) { A[i][j] = 1.0; }
        }
        kernel();
        return (int)o[0];
      }|}
  in
  let ctx, region = setup src "kernel" in
  let n = netlist_exn ctx region (config 1) in
  Alcotest.(check bool) "scratchpad instance" true
    (Testutil.contains n.Hls.Netlist.verilog "cayman_scratchpad #(.WORDS(");
  Alcotest.(check bool) "dma instance" true
    (Testutil.contains n.Hls.Netlist.verilog "cayman_dma u_dma")

let test_deterministic () =
  let ctx, region = setup mac_src "kernel" in
  let n1 = netlist_exn ctx region (config 1) in
  let n2 = netlist_exn ctx region (config 1) in
  Alcotest.(check string) "same verilog" n1.Hls.Netlist.verilog
    n2.Hls.Netlist.verilog

let test_primitive_library_covers_instances () =
  let ctx, region = setup mac_src "kernel" in
  let n = netlist_exn ctx region (config 1) in
  (* every instantiated cayman_* module exists in the primitive library *)
  let v = n.Hls.Netlist.verilog in
  let rec collect i acc =
    match String.index_from_opt v i 'c' with
    | None -> acc
    | Some j ->
      if j + 7 <= String.length v && String.equal (String.sub v j 7) "cayman_"
      then begin
        let k = ref j in
        while
          !k < String.length v
          && (match v.[!k] with
              | 'a' .. 'z' | '0' .. '9' | '_' -> true
              | 'A' .. 'Z' -> true
              | _ -> false)
        do
          incr k
        done;
        collect !k (String.sub v j (!k - j) :: acc)
      end
      else collect (j + 1) acc
  in
  let names =
    collect 0 []
    |> List.sort_uniq String.compare
    |> List.filter (fun m ->
      not (Testutil.contains m "cayman_accel"))
  in
  Alcotest.(check bool) "found instantiated primitives" true (names <> []);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m ^ " defined in primitives")
        true
        (Testutil.contains Hls.Netlist.primitives ("module " ^ m)))
    names

let test_reusable_netlist () =
  let n =
    Hls.Netlist.of_reusable ~name:"demo"
      ~units:[ (Ir.Op.U_float_add, 2); (Ir.Op.U_float_mul, 1) ]
      ~n_coupled:1 ~n_decoupled:2 ~sp_words:64 ~fsms:3
      ~regions:[ "f/loop:a"; "g/loop:b"; "h/loop:c" ]
  in
  let v = n.Hls.Netlist.verilog in
  Alcotest.(check int) "3 shared units" 3
    n.Hls.Netlist.stats.Hls.Netlist.n_compute;
  Alcotest.(check int) "3 FSMs" 3 n.Hls.Netlist.stats.Hls.Netlist.n_states;
  Alcotest.(check int) "two fadd instances" 2
    (count_substring v "cayman_float_add u_");
  Alcotest.(check int) "config muxes per unit" 6
    (count_substring v "cayman_mux_cfg u_mux_");
  Alcotest.(check bool) "kernels documented" true
    (Testutil.contains v "g/loop:b");
  Alcotest.(check bool) "global Ctrl present" true
    (Testutil.contains v "global Ctrl");
  Alcotest.(check bool) "shared scratchpad" true
    (Testutil.contains v "cayman_scratchpad #(.WORDS(64)");
  Alcotest.(check int) "one module" 1 (count_substring v "module ")

let test_call_region_rejected () =
  let src =
    {|float h(float x) { return x + 1.0; }
      const int N = 8;
      float a[N];
      void kernel() {
        for (int i = 0; i < N; i++) { a[i] = h(a[i]); }
      }
      int main() { kernel(); return (int)a[0]; }|}
  in
  let ctx, region = setup src "kernel" in
  Alcotest.(check bool) "no netlist for call regions" true
    (Hls.Netlist.of_kernel ctx region (config 1) = None)

let test_consistency_across_benchmarks () =
  (* every selected accelerator of several real benchmarks generates a
     netlist whose instance counts equal the area model's, with balanced
     module structure *)
  List.iter
    (fun name ->
      let a =
        Core.Cayman.analyze
          (Cayman_suites.Suite.compile (Cayman_suites.Suite.find_exn name))
      in
      let r = Core.Cayman.run ~mode:Hls.Kernel.Heuristic a in
      let s = Core.Cayman.best_under_ratio r ~budget_ratio:0.25 in
      List.iter
        (fun (acc : Core.Solution.accel) ->
          let ctx = Hashtbl.find a.Core.Cayman.ctxs acc.Core.Solution.a_func in
          let region =
            Option.get
              (An.Wpst.region a.Core.Cayman.wpst
                 { An.Wpst.vfunc = acc.Core.Solution.a_func;
                   vid = acc.Core.Solution.a_region_id })
          in
          match
            Hls.Netlist.of_kernel ctx region
              acc.Core.Solution.a_point.Hls.Kernel.config
          with
          | None -> Alcotest.failf "%s: selected kernel must be emittable" name
          | Some n ->
            let p = acc.Core.Solution.a_point in
            let model_units =
              List.fold_left (fun t (_, c) -> t + c) 0 p.Hls.Kernel.units
            in
            Alcotest.(check int)
              (Printf.sprintf "%s/%s: units" name
                 acc.Core.Solution.a_region_name)
              model_units n.Hls.Netlist.stats.Hls.Netlist.n_compute;
            let model_mem =
              p.Hls.Kernel.ifaces.Hls.Kernel.n_coupled
              + p.Hls.Kernel.ifaces.Hls.Kernel.n_decoupled
              + p.Hls.Kernel.ifaces.Hls.Kernel.n_scratchpad
            in
            Alcotest.(check int)
              (Printf.sprintf "%s/%s: interfaces" name
                 acc.Core.Solution.a_region_name)
              model_mem n.Hls.Netlist.stats.Hls.Netlist.n_mem;
            Alcotest.(check int)
              (Printf.sprintf "%s/%s: balanced module" name
                 acc.Core.Solution.a_region_name)
              1
              (count_substring n.Hls.Netlist.verilog "endmodule"))
        s.Core.Solution.accels)
    [ "atax"; "doitgen"; "nw"; "spmv"; "linear-alg-mid-100x100-sp" ]

let tests =
  [ Alcotest.test_case "basic structure" `Quick test_basic_structure;
    Alcotest.test_case "instance counts match model" `Quick
      test_counts_match_model;
    Alcotest.test_case "unroll replicates instances" `Quick
      test_unroll_replicates_instances;
    Alcotest.test_case "scratchpad + DMA emitted" `Quick
      test_scratchpad_and_dma_emitted;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "primitive library covers instances" `Quick
      test_primitive_library_covers_instances;
    Alcotest.test_case "reusable accelerator netlist" `Quick
      test_reusable_netlist;
    Alcotest.test_case "call regions rejected" `Quick
      test_call_region_rejected;
    Alcotest.test_case "model/netlist consistency on benchmarks" `Slow
      test_consistency_across_benchmarks ]
