(* Tests for the simulation substrate: memory, interpreter semantics
   (including a qcheck comparison against an OCaml reference evaluator),
   fuel, and profile consistency. *)

module Ir = Cayman_ir
module An = Cayman_analysis
module Sim = Cayman_sim

let test_memory_basics () =
  let program =
    Cayman_frontend.Lower.compile
      {|int a[4]; float f[2];
        int main() { a[0] = 7; f[1] = 2.5; return a[0]; }|}
  in
  let res = Sim.Interp.run program in
  let m = res.Sim.Interp.memory in
  Alcotest.(check int) "int cell" 7
    (match Sim.Memory.load m ~base:"a" ~index:0 with
     | Sim.Value.Vint n -> n
     | Sim.Value.Vfloat _ | Sim.Value.Vbool _ -> -1);
  Alcotest.(check (float 1e-9)) "float cell" 2.5
    (match Sim.Memory.load m ~base:"f" ~index:1 with
     | Sim.Value.Vfloat x -> x
     | Sim.Value.Vint _ | Sim.Value.Vbool _ -> nan);
  Alcotest.(check int) "size" 4 (Sim.Memory.size m "a");
  (match Sim.Memory.load m ~base:"a" ~index:4 with
   | _ -> Alcotest.fail "out of bounds must fault"
   | exception Sim.Memory.Fault _ -> ());
  (match Sim.Memory.load m ~base:"nope" ~index:0 with
   | _ -> Alcotest.fail "unknown array must fault"
   | exception Sim.Memory.Fault _ -> ())

let test_runtime_errors () =
  let run src =
    let program = Cayman_frontend.Lower.compile src in
    Sim.Interp.run program
  in
  (match run "int a[2]; int main() { a[5] = 1; return 0; }" with
   | _ -> Alcotest.fail "oob store must raise"
   | exception Sim.Interp.Runtime_error _ -> ());
  (match run "int main() { int x = 1; int y = 0; return x / y; }" with
   | _ -> Alcotest.fail "division by zero must raise"
   | exception Sim.Interp.Runtime_error _ -> ());
  (match run "int main() { int x = 1; return x % 0; }" with
   | _ -> Alcotest.fail "mod zero must raise"
   | exception Sim.Interp.Runtime_error _ -> ())

let test_fuel () =
  let program =
    Cayman_frontend.Lower.compile
      "int main() { int x = 0; while (x < 2) { x = x * 1; } return x; }"
  in
  match Sim.Interp.run ~fuel:10_000 program with
  | _ -> Alcotest.fail "infinite loop must run out of fuel"
  | exception Sim.Interp.Out_of_fuel -> ()

let test_profile_counts () =
  let _, res, program =
    Testutil.compile_run
      {|const int N = 13;
        int a[N];
        int main() {
          for (int i = 0; i < N; i++) { a[i] = i; }
          return a[3];
        }|}
  in
  let profile = res.Sim.Interp.profile in
  let f = Ir.Program.func_exn program "main" in
  (* find the loop body and header blocks *)
  let dom = An.Dominance.dominators f in
  let loops = An.Loops.find f dom in
  let l = List.hd loops in
  let header = l.An.Loops.header in
  Alcotest.(check int) "header executes N+1 times" 14
    (Sim.Profile.block_exec profile ~func:"main" ~label:header);
  Alcotest.(check (float 0.01)) "avg trip" 13.0
    (Sim.Profile.avg_trip f profile l);
  Alcotest.(check int) "main called once" 1
    (Sim.Profile.func_calls profile "main")

let test_profile_totals_consistency () =
  (* total cycles equal the sum of per-block cycles plus callee blocks *)
  let _, res, program =
    Testutil.compile_run
      {|const int N = 6;
        int a[N];
        int helper(int k) { return k * 2; }
        int main() {
          int s = 0;
          for (int i = 0; i < N; i++) { s += helper(i); a[i] = s; }
          return s;
        }|}
  in
  let profile = res.Sim.Interp.profile in
  let sum =
    List.fold_left
      (fun acc (f : Ir.Func.t) ->
        List.fold_left
          (fun acc (b : Ir.Block.t) ->
            acc + Sim.Profile.block_cycles f profile ~label:b.Ir.Block.label)
          acc f.Ir.Func.blocks)
      0 program.Ir.Program.funcs
  in
  Alcotest.(check int) "cycles attribute exactly to blocks"
    (Sim.Profile.total_cycles profile) sum

let test_region_profile () =
  let _, res, program =
    Testutil.compile_run
      {|const int N = 10;
        int a[N];
        void fill() {
          for (int i = 0; i < N; i++) { a[i] = i; }
        }
        int main() {
          for (int t = 0; t < 3; t++) { fill(); }
          return a[2];
        }|}
  in
  let profile = res.Sim.Interp.profile in
  let f = Ir.Program.func_exn program "fill" in
  let root = An.Region.pst f in
  (* whole-function region entered 3 times *)
  Alcotest.(check int) "fill region entries" 3
    (Sim.Profile.region_entries f profile root);
  (* its loop region is also entered 3 times *)
  let loop_region = ref None in
  An.Region.iter
    (fun r ->
      if r.An.Region.kind = An.Region.Loop_region && !loop_region = None then
        loop_region := Some r)
    root;
  (match !loop_region with
   | Some r ->
     Alcotest.(check int) "loop region entries" 3
       (Sim.Profile.region_entries f profile r);
     Alcotest.(check bool) "loop region cycles positive" true
       (Sim.Profile.region_cycles f profile r > 0)
   | None -> Alcotest.fail "no loop region in fill");
  (* region cycles of the root equal the sum over its blocks *)
  let by_blocks =
    List.fold_left
      (fun acc (b : Ir.Block.t) ->
        acc + Sim.Profile.block_cycles f profile ~label:b.Ir.Block.label)
      0 f.Ir.Func.blocks
  in
  Alcotest.(check int) "root region cycles = block sum" by_blocks
    (Sim.Profile.region_cycles f profile root)

let test_determinism () =
  let src = (Cayman_suites.Suite.find_exn "atax").Cayman_suites.Suite.source in
  let p1 = Cayman_frontend.Lower.compile src in
  let p2 = Cayman_frontend.Lower.compile src in
  let r1 = Sim.Interp.run p1 in
  let r2 = Sim.Interp.run p2 in
  Alcotest.(check int) "same cycles" (Sim.Profile.total_cycles r1.Sim.Interp.profile)
    (Sim.Profile.total_cycles r2.Sim.Interp.profile);
  Alcotest.(check bool) "same return" true
    (match r1.Sim.Interp.return_value, r2.Sim.Interp.return_value with
     | Some a, Some b -> Sim.Value.equal a b
     | None, None -> true
     | Some _, None | None, Some _ -> false)

(* qcheck: random integer expressions evaluated by the interpreter match
   an OCaml reference evaluation. *)
type iexpr =
  | Lit of int
  | Add of iexpr * iexpr
  | Sub of iexpr * iexpr
  | Mul of iexpr * iexpr
  | Neg of iexpr

let rec eval_ref = function
  | Lit n -> n
  | Add (a, b) -> eval_ref a + eval_ref b
  | Sub (a, b) -> eval_ref a - eval_ref b
  | Mul (a, b) -> eval_ref a * eval_ref b
  | Neg a -> -eval_ref a

let rec expr_to_minic = function
  | Lit n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (expr_to_minic a) (expr_to_minic b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (expr_to_minic a) (expr_to_minic b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (expr_to_minic a) (expr_to_minic b)
  | Neg a -> Printf.sprintf "(-%s)" (expr_to_minic a)

let gen_iexpr =
  QCheck.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then map (fun v -> Lit v) (int_range (-20) 20)
            else
              frequency
                [ 1, map (fun v -> Lit v) (int_range (-20) 20);
                  2, map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2));
                  2, map2 (fun a b -> Sub (a, b)) (self (n / 2)) (self (n / 2));
                  2, map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2));
                  1, map (fun a -> Neg a) (self (n - 1)) ])
          (min n 8)))

let arb_iexpr = QCheck.make ~print:expr_to_minic gen_iexpr

let qcheck_interp_matches_reference =
  Testutil.qtest ~count:120 "interpreter matches reference arithmetic"
    arb_iexpr (fun e ->
      let expected = eval_ref e in
      (* compare modulo truncation into a bounded int to avoid overflow
         discrepancies (none expected: both use OCaml ints) *)
      let src =
        Printf.sprintf "int main() { return %s; }" (expr_to_minic e)
      in
      let got, _, _ = Testutil.compile_run src in
      got = expected)

(* qcheck: interpreting a sum over a random int array matches a fold. *)
let qcheck_array_sum =
  Testutil.qtest ~count:40 "array sum matches fold"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (int_range (-50) 50))
    (fun xs ->
      let n = List.length xs in
      let inits =
        String.concat "\n"
          (List.mapi (fun i v -> Printf.sprintf "a[%d] = %d;" i v) xs)
      in
      let src =
        Printf.sprintf
          {|const int N = %d;
            int a[N];
            int main() {
              %s
              int s = 0;
              for (int i = 0; i < N; i++) { s += a[i]; }
              return s;
            }|}
          n inits
      in
      let got, _, _ = Testutil.compile_run src in
      got = List.fold_left ( + ) 0 xs)

let tests =
  [ Alcotest.test_case "memory basics" `Quick test_memory_basics;
    Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
    Alcotest.test_case "fuel exhausts" `Quick test_fuel;
    Alcotest.test_case "profile counts" `Quick test_profile_counts;
    Alcotest.test_case "profile totals consistent" `Quick
      test_profile_totals_consistency;
    Alcotest.test_case "region profiling" `Quick test_region_profile;
    Alcotest.test_case "determinism" `Quick test_determinism;
    qcheck_interp_matches_reference;
    qcheck_array_sum ]
