(* Tests for solutions, the Pareto/filter machinery (with qcheck), and
   the selection dynamic program. *)

module An = Cayman_analysis
module Hls = Cayman_hls
module Suite = Cayman_suites.Suite

(* Make a synthetic solution with a given (area, saved). *)
let sol area saved =
  { Core.Solution.empty with Core.Solution.area; saved }

let arb_solutions =
  QCheck.(
    list_of_size
      (QCheck.Gen.int_range 0 40)
      (pair (float_bound_inclusive 5.0e5) (float_bound_inclusive 1.0)))
  |> QCheck.map (List.map (fun (a, s) -> sol a s))

let is_sorted_increasing_area =
  let rec go = function
    | a :: (b :: _ as rest) ->
      a.Core.Solution.area <= b.Core.Solution.area && go rest
    | [ _ ] | [] -> true
  in
  go

let is_strictly_increasing_saved =
  let rec go = function
    | a :: (b :: _ as rest) ->
      a.Core.Solution.saved < b.Core.Solution.saved && go rest
    | [ _ ] | [] -> true
  in
  go

let qcheck_pareto_sorted =
  Testutil.qtest ~count:200 "pareto is sorted with increasing saved"
    arb_solutions (fun xs ->
      let p = Core.Solution.pareto xs in
      is_sorted_increasing_area p && is_strictly_increasing_saved p)

let qcheck_pareto_contains_empty =
  Testutil.qtest ~count:100 "pareto starts from the empty solution"
    arb_solutions (fun xs ->
      match Core.Solution.pareto xs with
      | first :: _ -> first.Core.Solution.area = 0.0
      | [] -> false)

let qcheck_pareto_dominates_input =
  Testutil.qtest ~count:200 "every input is dominated by a pareto point"
    arb_solutions (fun xs ->
      let p = Core.Solution.pareto xs in
      List.for_all
        (fun x ->
          List.exists
            (fun y ->
              y.Core.Solution.area <= x.Core.Solution.area
              && y.Core.Solution.saved >= x.Core.Solution.saved)
            p)
        xs)

let qcheck_filter_spacing =
  Testutil.qtest ~count:200 "filter enforces alpha spacing"
    arb_solutions (fun xs ->
      let alpha = 1.2 in
      let f = Core.Solution.filter ~alpha (Core.Solution.pareto xs) in
      (* consecutive areas grow by alpha; only the final element may break
         the spacing (it is the retained maximum-saving solution) *)
      let rec go = function
        | [ _ ] | [] | [ _; _ ] -> true
        | a :: (b :: _ as rest) ->
          b.Core.Solution.area
          > alpha *. Float.max a.Core.Solution.area Core.Solution.area_quantum
          && go rest
      in
      let spacing_first a b =
        b.Core.Solution.area
        > alpha *. Float.max a.Core.Solution.area Core.Solution.area_quantum
      in
      (match f with
       | a :: b :: _ when List.length f > 2 -> spacing_first a b
       | _ -> true)
      && go f)

let qcheck_filter_keeps_best =
  Testutil.qtest ~count:200 "filter keeps the maximum saving"
    arb_solutions (fun xs ->
      let p = Core.Solution.pareto xs in
      let f = Core.Solution.filter ~alpha:1.5 p in
      let best l =
        List.fold_left (fun acc s -> Float.max acc s.Core.Solution.saved) 0.0 l
      in
      abs_float (best p -. best f) < 1e-12)

let qcheck_combine_additive =
  Testutil.qtest ~count:100 "combine unions areas and savings"
    (QCheck.pair arb_solutions arb_solutions) (fun (xs, ys) ->
      let combined =
        Core.Solution.combine ~alpha:1.1 (Core.Solution.pareto xs)
          (Core.Solution.pareto ys)
      in
      (* every combined solution's totals equal the sum over its accels;
         since synthetic solutions have no accels, just check the list is a
         valid pareto sequence *)
      is_sorted_increasing_area combined
      && is_strictly_increasing_saved combined)

let test_best_under () =
  let xs =
    [ sol 0.0 0.0; sol 100_000.0 0.2; sol 200_000.0 0.5; sol 400_000.0 0.7 ]
  in
  let get budget =
    match Core.Solution.best_under ~budget xs with
    | Some s -> s.Core.Solution.saved
    | None -> -1.0
  in
  Alcotest.(check (float 1e-9)) "tight budget" 0.2 (get 150_000.0);
  Alcotest.(check (float 1e-9)) "mid budget" 0.5 (get 200_000.0);
  Alcotest.(check (float 1e-9)) "large budget" 0.7 (get 1.0e9);
  Alcotest.(check (float 1e-9)) "zero budget keeps empty" 0.0 (get 0.0)

let test_speedup_formula () =
  let s = sol 1000.0 0.5 in
  Alcotest.(check (float 1e-9)) "Eq 1" 2.0 (Core.Solution.speedup ~t_all:1.0 s);
  Alcotest.(check (float 1e-9)) "no saving" 1.0
    (Core.Solution.speedup ~t_all:1.0 Core.Solution.empty)

(* --- DP on real benchmarks --- *)

let analyzed_cache : (string, Core.Cayman.analyzed) Hashtbl.t =
  Hashtbl.create 4

let analyzed name =
  match Hashtbl.find_opt analyzed_cache name with
  | Some a -> a
  | None ->
    let a = Core.Cayman.analyze (Suite.compile (Suite.find_exn name)) in
    Hashtbl.replace analyzed_cache name a;
    a

let frontier_of name gen =
  let a = analyzed name in
  let frontier, stats =
    Core.Select.select ~gen a.Core.Cayman.ctxs a.Core.Cayman.wpst
      a.Core.Cayman.profile
  in
  a, frontier, stats

let test_dp_nonoverlap () =
  (* the knapsack constraint: selected kernels of any solution belong to
     non-overlapping regions (block sets disjoint per function) *)
  List.iter
    (fun name ->
      let a, frontier, _ =
        frontier_of name (Core.Cayman.gen Hls.Kernel.Heuristic)
      in
      List.iter
        (fun s ->
          let by_func = Hashtbl.create 4 in
          List.iter
            (fun (acc : Core.Solution.accel) ->
              let region =
                match
                  An.Wpst.region a.Core.Cayman.wpst
                    { An.Wpst.vfunc = acc.Core.Solution.a_func;
                      vid = acc.Core.Solution.a_region_id }
                with
                | Some r -> r
                | None -> Alcotest.fail "dangling region reference"
              in
              let prev =
                try Hashtbl.find by_func acc.Core.Solution.a_func
                with Not_found -> An.Region.String_set.empty
              in
              if
                not
                  (An.Region.String_set.is_empty
                     (An.Region.String_set.inter prev region.An.Region.blocks))
              then
                Alcotest.failf "%s: overlapping kernels in one solution" name;
              Hashtbl.replace by_func acc.Core.Solution.a_func
                (An.Region.String_set.union prev region.An.Region.blocks))
            s.Core.Solution.accels)
        frontier)
    [ "atax"; "trisolv"; "fft" ]

let test_dp_budget_monotone () =
  let _, frontier, _ =
    frontier_of "atax" (Core.Cayman.gen Hls.Kernel.Heuristic)
  in
  let a = analyzed "atax" in
  let speedups =
    List.map
      (fun budget ->
        match
          Core.Solution.best_under
            ~budget:(budget *. Hls.Tech.cva6_tile_area)
            frontier
        with
        | Some s -> Core.Solution.speedup ~t_all:a.Core.Cayman.t_all s
        | None -> 1.0)
      [ 0.05; 0.15; 0.25; 0.45; 0.65; 1.0 ]
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "speedup grows with budget" true (monotone speedups)

let test_dp_saved_within_total () =
  List.iter
    (fun name ->
      let a, frontier, _ =
        frontier_of name (Core.Cayman.gen Hls.Kernel.Heuristic)
      in
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (name ^ ": saved below T_all")
            true
            (s.Core.Solution.saved <= a.Core.Cayman.t_all +. 1e-12
             && s.Core.Solution.saved >= -1e-12))
        frontier)
    [ "atax"; "bicg"; "spmv" ]

let test_baselines_dominated () =
  (* NOVIA's design space is a subset of Cayman's: at every budget, full
     Cayman is at least as fast. Same for QsCores and coupled-only. *)
  List.iter
    (fun name ->
      let a = analyzed name in
      let run gen =
        let frontier, _ =
          Core.Select.select ~gen a.Core.Cayman.ctxs a.Core.Cayman.wpst
            a.Core.Cayman.profile
        in
        frontier
      in
      let full = run (Core.Cayman.gen Hls.Kernel.Heuristic) in
      let others =
        [ "coupled", run (Core.Cayman.gen Hls.Kernel.Coupled_only);
          "novia", run Cayman_baselines.Novia.gen;
          "qscores", run Cayman_baselines.Qscores.gen ]
      in
      List.iter
        (fun budget ->
          let best frontier =
            match
              Core.Solution.best_under
                ~budget:(budget *. Hls.Tech.cva6_tile_area)
                frontier
            with
            | Some s -> Core.Solution.speedup ~t_all:a.Core.Cayman.t_all s
            | None -> 1.0
          in
          let sp_full = best full in
          List.iter
            (fun (label, f) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: full >= %s at %.0f%%" name label
                   (100.0 *. budget))
                true
                (* allow a tiny tolerance: the filter may drop points *)
                (sp_full >= best f *. 0.95))
            others)
        [ 0.25; 0.65 ])
    [ "atax"; "mvt" ]

let test_pruning_reduces_work () =
  let a = analyzed "atax" in
  let run threshold =
    let params =
      { Core.Select.default_params with Core.Select.prune_threshold = threshold }
    in
    let _, stats =
      Core.Select.select ~params
        ~gen:(Core.Cayman.gen Hls.Kernel.Heuristic)
        a.Core.Cayman.ctxs a.Core.Cayman.wpst a.Core.Cayman.profile
    in
    stats
  in
  let none = run 0.0 in
  let aggressive = run 0.05 in
  Alcotest.(check bool) "pruning skips vertices" true
    (aggressive.Core.Select.pruned > none.Core.Select.pruned);
  Alcotest.(check bool) "pruning evaluates fewer points" true
    (aggressive.Core.Select.points_evaluated
     <= none.Core.Select.points_evaluated)

let test_alpha_bounds_frontier () =
  let a = analyzed "atax" in
  let frontier_len alpha =
    let params = { Core.Select.default_params with Core.Select.alpha } in
    let frontier, _ =
      Core.Select.select ~params
        ~gen:(Core.Cayman.gen Hls.Kernel.Heuristic)
        a.Core.Cayman.ctxs a.Core.Cayman.wpst a.Core.Cayman.profile
    in
    List.length frontier
  in
  Alcotest.(check bool) "larger alpha gives shorter frontier" true
    (frontier_len 2.0 <= frontier_len 1.05)

let tests =
  [ qcheck_pareto_sorted;
    qcheck_pareto_contains_empty;
    qcheck_pareto_dominates_input;
    qcheck_filter_spacing;
    qcheck_filter_keeps_best;
    qcheck_combine_additive;
    Alcotest.test_case "best_under budgets" `Quick test_best_under;
    Alcotest.test_case "speedup formula" `Quick test_speedup_formula;
    Alcotest.test_case "DP kernels never overlap" `Slow test_dp_nonoverlap;
    Alcotest.test_case "budget monotonicity" `Quick test_dp_budget_monotone;
    Alcotest.test_case "saved within T_all" `Quick test_dp_saved_within_total;
    Alcotest.test_case "baselines dominated by full Cayman" `Slow
      test_baselines_dominated;
    Alcotest.test_case "pruning reduces work" `Quick test_pruning_reduces_work;
    Alcotest.test_case "alpha bounds frontier size" `Quick
      test_alpha_bounds_frontier ]
