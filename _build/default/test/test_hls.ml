(* Tests for the accelerator model: DFGs, scheduling, pipelining, and the
   kernel estimator. *)

module Ir = Cayman_ir
module An = Cayman_analysis
module Sim = Cayman_sim
module Hls = Cayman_hls

let compile_ctx src fname =
  let program = Cayman_frontend.Lower.compile src in
  let res = Sim.Interp.run program in
  let ctxs = Hls.Ctx.for_program program res.Sim.Interp.profile in
  Hashtbl.find ctxs fname

(* The innermost (first) loop region of a function's PST. *)
let first_loop_region (ctx : Hls.Ctx.t) =
  let root = An.Region.pst ctx.Hls.Ctx.func in
  let found = ref None in
  An.Region.iter
    (fun r ->
      if r.An.Region.kind = An.Region.Loop_region && !found = None then
        found := Some r)
    root;
  match !found with
  | Some r -> r
  | None -> Alcotest.fail "no loop region"

(* --- DFG --- *)

let mac_src =
  {|const int N = 64;
    float a[N]; float b[N]; float out[1];
    void kernel() {
      float acc = 0.0;
      for (int i = 0; i < N; i++) { acc += a[i] * b[i]; }
      out[0] = acc;
    }
    int main() {
      for (int i = 0; i < N; i++) { a[i] = 1.0; b[i] = 0.5; }
      for (int t = 0; t < 4; t++) { kernel(); }
      return (int)out[0];
    }|}

let body_dfg ctx =
  let region = first_loop_region ctx in
  let body =
    An.Region.String_set.elements region.An.Region.blocks
    |> List.find (fun l -> Testutil.contains l "body")
  in
  Hls.Ctx.dfg ctx body

let test_dfg_structure () =
  let ctx = compile_ctx mac_src "kernel" in
  let dfg = body_dfg ctx in
  Alcotest.(check int) "two memory nodes" 2
    (List.length (Hls.Dfg.mem_nodes dfg));
  Alcotest.(check bool) "no calls" false (Hls.Dfg.has_call dfg);
  let units = Hls.Dfg.unit_counts dfg in
  Alcotest.(check (option int)) "one fmul" (Some 1)
    (List.assoc_opt Ir.Op.U_float_mul units);
  Alcotest.(check (option int)) "one fadd" (Some 1)
    (List.assoc_opt Ir.Op.U_float_add units);
  (* acc is a live-in of the body *)
  Alcotest.(check bool) "acc is live-in" true
    (Hashtbl.fold
       (fun rid _ acc -> acc || Testutil.contains rid "acc")
       dfg.Hls.Dfg.live_in_uses false)

let test_dfg_dependencies_respected () =
  (* in the schedule, every node issues at or after its predecessors'
     issue and no earlier than their finish when crossing cycles *)
  let ctx = compile_ctx mac_src "kernel" in
  let dfg = body_dfg ctx in
  let sched = Hls.Schedule.run dfg ~iface:(fun _ -> Hls.Iface.Coupled) in
  Array.iteri
    (fun i preds ->
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (Printf.sprintf "node %d after pred %d" i p)
            true
            (sched.Hls.Schedule.finish_cycle.(i)
             >= sched.Hls.Schedule.issue_cycle.(p)))
        preds)
    dfg.Hls.Dfg.preds

let test_memory_ordering () =
  (* store then load on the same array must keep order in the DFG *)
  let src =
    {|const int N = 8;
      float a[N];
      void kernel() {
        for (int i = 1; i < N; i++) {
          a[i] = a[i] + 1.0;
          a[i - 1] = a[i] * 2.0;
        }
      }
      int main() {
        for (int i = 0; i < N; i++) { a[i] = 1.0; }
        kernel();
        return (int)a[0];
      }|}
  in
  let ctx = compile_ctx src "kernel" in
  let dfg = body_dfg ctx in
  let mem = Hls.Dfg.mem_nodes dfg in
  (* the later load depends (transitively) on the earlier store *)
  let stores =
    List.filter
      (fun i ->
        match dfg.Hls.Dfg.instrs.(i) with
        | Ir.Instr.Store _ -> true
        | _ -> false)
      mem
  in
  Alcotest.(check int) "two stores" 2 (List.length stores);
  let first_store = List.hd stores in
  let later_loads =
    List.filter
      (fun i ->
        i > first_store
        &&
        match dfg.Hls.Dfg.instrs.(i) with
        | Ir.Instr.Load _ -> true
        | _ -> false)
      mem
  in
  List.iter
    (fun ld ->
      let rec reaches n =
        n = first_store || List.exists reaches dfg.Hls.Dfg.preds.(n)
      in
      Alcotest.(check bool)
        (Printf.sprintf "load %d ordered after store %d" ld first_store)
        true (reaches ld))
    later_loads

(* --- scheduling --- *)

let test_chaining_packs_cheap_ops () =
  (* a chain of 4 int adds fits in far fewer cycles than 4 *)
  let src =
    {|const int N = 4;
      int a[N];
      void kernel(int x) {
        for (int i = 0; i < N; i++) {
          a[i] = x + 1 + i + x + i;
        }
      }
      int main() { kernel(3); return a[1]; }|}
  in
  let ctx = compile_ctx src "kernel" in
  let dfg = body_dfg ctx in
  let sched = Hls.Schedule.run dfg ~iface:(fun _ -> Hls.Iface.Scratchpad) in
  Alcotest.(check bool) "chained adds take <= 4 cycles" true
    (sched.Hls.Schedule.length <= 4)

let test_interface_latency_ordering () =
  (* block latency: scan >= coupled >= decoupled >= scratchpad *)
  let ctx = compile_ctx mac_src "kernel" in
  let dfg = body_dfg ctx in
  let len k = (Hls.Schedule.run dfg ~iface:(fun _ -> k)).Hls.Schedule.length in
  let scan = len Hls.Iface.Scan in
  let coupled = len Hls.Iface.Coupled in
  let decoupled = len Hls.Iface.Decoupled in
  let scratchpad = len Hls.Iface.Scratchpad in
  Alcotest.(check bool) "scan slowest" true (scan >= coupled);
  Alcotest.(check bool) "coupled >= decoupled" true (coupled >= decoupled);
  Alcotest.(check bool) "decoupled >= scratchpad" true
    (decoupled >= scratchpad)

let test_coupled_port_serializes () =
  (* with one shared port, many loads serialize: latency grows with the
     number of coupled accesses *)
  let src =
    {|const int N = 16;
      float a[N]; float o[N];
      void kernel() {
        for (int i = 4; i < N - 4; i++) {
          o[i] = a[i - 2] + a[i - 1] + a[i] + a[i + 1] + a[i + 2];
        }
      }
      int main() {
        for (int i = 0; i < N; i++) { a[i] = 1.0; }
        kernel();
        return (int)o[5];
      }|}
  in
  let ctx = compile_ctx src "kernel" in
  let dfg = body_dfg ctx in
  let coupled =
    (Hls.Schedule.run dfg ~iface:(fun _ -> Hls.Iface.Coupled)).Hls.Schedule.length
  in
  let decoupled =
    (Hls.Schedule.run dfg ~iface:(fun _ -> Hls.Iface.Decoupled)).Hls.Schedule.length
  in
  Alcotest.(check bool) "5 loads serialize on the coupled port" true
    (coupled >= decoupled + 4)

(* --- pipelining --- *)

let test_rec_mii_accumulator () =
  let ctx = compile_ctx mac_src "kernel" in
  let dfg = body_dfg ctx in
  let loop =
    List.find
      (fun (l : An.Loops.loop) -> An.Loops.is_innermost ctx.Hls.Ctx.loops l)
      ctx.Hls.Ctx.loops
  in
  let mii =
    Hls.Pipeline.rec_mii ctx dfg ~iface:(fun _ -> Hls.Iface.Decoupled) loop
  in
  (* the acc += ... recurrence is one float add: latency 2 cycles *)
  Alcotest.(check int) "RecMII = fadd latency"
    (Hls.Tech.latency_cycles Ir.Op.U_float_add) mii

let test_res_mii_scaling () =
  let ctx = compile_ctx mac_src "kernel" in
  let dfg = body_dfg ctx in
  let coupled = fun _ -> Hls.Iface.Coupled in
  let m1 = Hls.Pipeline.res_mii dfg ~iface:coupled ~unroll:1 ~sp_banks:1 in
  let m4 = Hls.Pipeline.res_mii dfg ~iface:coupled ~unroll:4 ~sp_banks:1 in
  Alcotest.(check int) "coupled ResMII scales with unroll" (4 * m1) m4;
  let sp = fun _ -> Hls.Iface.Scratchpad in
  let s1 = Hls.Pipeline.res_mii dfg ~iface:sp ~unroll:1 ~sp_banks:1 in
  let s4 = Hls.Pipeline.res_mii dfg ~iface:sp ~unroll:4 ~sp_banks:4 in
  Alcotest.(check int) "banked scratchpad ResMII stays flat" s1 s4;
  let d = fun _ -> Hls.Iface.Decoupled in
  Alcotest.(check int) "decoupled ResMII is 1" 1
    (Hls.Pipeline.res_mii dfg ~iface:d ~unroll:8 ~sp_banks:1)

(* --- kernel estimation --- *)

let test_estimate_basic () =
  let ctx = compile_ctx mac_src "kernel" in
  let region = first_loop_region ctx in
  let config =
    { Hls.Kernel.unroll = 1; pipeline = true; mode = Hls.Kernel.Heuristic }
  in
  match Hls.Kernel.estimate ctx region config with
  | None -> Alcotest.fail "estimate must succeed"
  | Some p ->
    Alcotest.(check bool) "positive cycles" true (p.Hls.Kernel.accel_cycles > 0.0);
    Alcotest.(check bool) "positive area" true (p.Hls.Kernel.area > 0.0);
    Alcotest.(check int) "one pipelined region" 1 p.Hls.Kernel.n_pipelined;
    Alcotest.(check int) "4 invocations" 4 p.Hls.Kernel.invocations;
    Alcotest.(check bool) "has datapath units" true (p.Hls.Kernel.units <> [])

let test_pipeline_beats_sequential () =
  let ctx = compile_ctx mac_src "kernel" in
  let region = first_loop_region ctx in
  let est pipeline =
    match
      Hls.Kernel.estimate ctx region
        { Hls.Kernel.unroll = 1; pipeline; mode = Hls.Kernel.Heuristic }
    with
    | Some p -> p.Hls.Kernel.accel_cycles
    | None -> Alcotest.fail "estimate failed"
  in
  Alcotest.(check bool) "pipelined is faster" true (est true < est false)

let test_coupled_only_not_faster () =
  let ctx = compile_ctx mac_src "kernel" in
  let region = first_loop_region ctx in
  let est mode =
    match
      Hls.Kernel.estimate ctx region
        { Hls.Kernel.unroll = 1; pipeline = true; mode }
    with
    | Some p -> p.Hls.Kernel.accel_cycles
    | None -> Alcotest.fail "estimate failed"
  in
  Alcotest.(check bool) "heuristic <= coupled-only" true
    (est Hls.Kernel.Heuristic <= est Hls.Kernel.Coupled_only);
  Alcotest.(check bool) "coupled-only <= scan-only" true
    (est Hls.Kernel.Coupled_only <= est Hls.Kernel.Scan_only)

let test_region_with_call_rejected () =
  let src =
    {|const int N = 8;
      float a[N];
      float helper(float x) { return x * 2.0; }
      void kernel() {
        for (int i = 0; i < N; i++) { a[i] = helper(a[i]); }
      }
      int main() {
        for (int i = 0; i < N; i++) { a[i] = 1.0; }
        kernel();
        return (int)a[0];
      }|}
  in
  let ctx = compile_ctx src "kernel" in
  let region = first_loop_region ctx in
  Alcotest.(check bool) "region with call has no design points" true
    (Hls.Kernel.estimate ctx region
       { Hls.Kernel.unroll = 1; pipeline = true; mode = Hls.Kernel.Heuristic }
     = None)

let test_unroll_blocked_by_carried_dep () =
  (* the MAC loop has an accumulator: unroll must silently stay at 1, so
     u=4 and u=1 give identical unit counts *)
  let ctx = compile_ctx mac_src "kernel" in
  let region = first_loop_region ctx in
  let units u =
    match
      Hls.Kernel.estimate ctx region
        { Hls.Kernel.unroll = u; pipeline = true; mode = Hls.Kernel.Heuristic }
    with
    | Some p -> p.Hls.Kernel.units
    | None -> Alcotest.fail "estimate failed"
  in
  Alcotest.(check bool) "no replication under carried dep" true
    (units 1 = units 4)

let test_unroll_replicates_dep_free_loop () =
  let src =
    {|const int N = 64;
      float a[N]; float b[N];
      void kernel() {
        for (int i = 0; i < N; i++) { b[i] = a[i] * 2.0 + 1.0; }
      }
      int main() {
        for (int i = 0; i < N; i++) { a[i] = 1.0; }
        for (int t = 0; t < 4; t++) { kernel(); }
        return (int)b[0];
      }|}
  in
  let ctx = compile_ctx src "kernel" in
  let region = first_loop_region ctx in
  let point u =
    match
      Hls.Kernel.estimate ctx region
        { Hls.Kernel.unroll = u; pipeline = true; mode = Hls.Kernel.Heuristic }
    with
    | Some p -> p
    | None -> Alcotest.fail "estimate failed"
  in
  let p1 = point 1 and p4 = point 4 in
  let count p k = Option.value (List.assoc_opt k p.Hls.Kernel.units) ~default:0 in
  Alcotest.(check int) "fmul replicated x4"
    (4 * count p1 Ir.Op.U_float_mul)
    (count p4 Ir.Op.U_float_mul);
  Alcotest.(check bool) "unrolled area larger" true
    (p4.Hls.Kernel.area > p1.Hls.Kernel.area);
  Alcotest.(check bool) "unrolled not slower" true
    (p4.Hls.Kernel.accel_cycles <= p1.Hls.Kernel.accel_cycles)

let test_tech_sanity () =
  Alcotest.(check bool) "fdiv slower than fadd" true
    (Hls.Tech.delay_ns Ir.Op.U_float_div > Hls.Tech.delay_ns Ir.Op.U_float_add);
  Alcotest.(check bool) "fmul bigger than int add" true
    (Hls.Tech.area Ir.Op.U_float_mul > Hls.Tech.area Ir.Op.U_int_add);
  Alcotest.(check int) "sub-cycle op takes 1 cycle" 1
    (Hls.Tech.latency_cycles Ir.Op.U_int_add);
  Alcotest.(check (float 1e-9)) "frequency is 500 MHz" 0.5e9
    Hls.Tech.accel_freq_hz;
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Ir.Op.unit_kind_to_string k ^ " positive tables")
        true
        (Hls.Tech.delay_ns k > 0.0 && Hls.Tech.area k > 0.0
         && Hls.Tech.latency_cycles k >= 1))
    Ir.Op.all_unit_kinds

let test_saved_seconds_sign () =
  let ctx = compile_ctx mac_src "kernel" in
  let region = first_loop_region ctx in
  match
    Hls.Kernel.estimate ctx region
      { Hls.Kernel.unroll = 1; pipeline = true; mode = Hls.Kernel.Heuristic }
  with
  | Some p ->
    Alcotest.(check bool) "pipelined MAC saves time" true
      (Hls.Kernel.saved_seconds p > 0.0)
  | None -> Alcotest.fail "estimate failed"

let tests =
  [ Alcotest.test_case "DFG structure" `Quick test_dfg_structure;
    Alcotest.test_case "schedule respects dependencies" `Quick
      test_dfg_dependencies_respected;
    Alcotest.test_case "memory ordering in DFG" `Quick test_memory_ordering;
    Alcotest.test_case "chaining packs cheap ops" `Quick
      test_chaining_packs_cheap_ops;
    Alcotest.test_case "interface latency ordering" `Quick
      test_interface_latency_ordering;
    Alcotest.test_case "coupled port serializes" `Quick
      test_coupled_port_serializes;
    Alcotest.test_case "RecMII of accumulator" `Quick test_rec_mii_accumulator;
    Alcotest.test_case "ResMII scaling" `Quick test_res_mii_scaling;
    Alcotest.test_case "kernel estimate basics" `Quick test_estimate_basic;
    Alcotest.test_case "pipelining beats sequential" `Quick
      test_pipeline_beats_sequential;
    Alcotest.test_case "interface modes ordered" `Quick
      test_coupled_only_not_faster;
    Alcotest.test_case "calls reject synthesis" `Quick
      test_region_with_call_rejected;
    Alcotest.test_case "carried dep blocks unroll" `Quick
      test_unroll_blocked_by_carried_dep;
    Alcotest.test_case "unroll replicates datapath" `Quick
      test_unroll_replicates_dep_free_loop;
    Alcotest.test_case "tech table sanity" `Quick test_tech_sanity;
    Alcotest.test_case "saved seconds positive for MAC" `Quick
      test_saved_seconds_sign ]
