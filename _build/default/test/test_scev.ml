(* Tests for scalar evolution, access-pattern classification, footprints
   and memory dependence analysis. *)

module Ir = Cayman_ir
module An = Cayman_analysis

(* Compile, run, and return (func, loops, scev, live) of [name]. *)
let analyze src name =
  let _, res, program = Testutil.compile_run src in
  ignore res;
  let f = Ir.Program.func_exn program name in
  let dom = An.Dominance.dominators f in
  let loops = An.Loops.find f dom in
  let scev = An.Scev.create f loops in
  let live = An.Liveness.compute f in
  f, loops, scev, live

(* All (block, pos, instr) memory accesses of a function touching [base]. *)
let accesses_of (f : Ir.Func.t) base =
  List.concat_map
    (fun (b : Ir.Block.t) ->
      List.filteri (fun _ _ -> true) b.Ir.Block.instrs
      |> List.mapi (fun pos i -> b.Ir.Block.label, pos, i)
      |> List.filter (fun (_, _, i) ->
        match Ir.Instr.mem_ref_of i with
        | Some m -> String.equal m.Ir.Instr.base base
        | None -> false))
    f.Ir.Func.blocks

let classify_all scev f base =
  List.map
    (fun (block, pos, _) -> An.Scev.classify scev ~block ~pos)
    (accesses_of f base)

let src_streams =
  {|const int N = 32;
    float a[N]; float b[N]; float c[N][N];
    int idx[N];
    void kernel(int off) {
      for (int i = 0; i < N; i++) {
        b[i] = a[i] * 2.0;          // unit stride
      }
      for (int i = 0; i < N / 2; i++) {
        b[2 * i] = a[N - 1 - i];     // strides +2 / -1
      }
      for (int i = 0; i < N; i++) {
        b[i] = a[idx[i]];            // irregular via index load
      }
    }
    int main() {
      for (int i = 0; i < N; i++) { a[i] = 1.0; idx[i] = i / 2; }
      kernel(3);
      return (int)b[1];
    }|}

let test_stream_classification () =
  let f, _, scev, _ = analyze src_streams "kernel" in
  let pats_b = classify_all scev f "b" in
  Alcotest.(check bool) "b has stride +1" true
    (List.mem (An.Scev.Stream 1) pats_b);
  Alcotest.(check bool) "b has stride +2" true
    (List.mem (An.Scev.Stream 2) pats_b);
  let pats_a = classify_all scev f "a" in
  Alcotest.(check bool) "a has stride -1" true
    (List.mem (An.Scev.Stream (-1)) pats_a);
  Alcotest.(check bool) "a has an irregular access" true
    (List.mem An.Scev.Irregular pats_a);
  let pats_idx = classify_all scev f "idx" in
  (* idx[i] itself is a unit-stride stream *)
  Alcotest.(check (list string)) "idx access is a stream"
    [ "stream(+1)" ]
    (List.map An.Scev.pattern_to_string pats_idx)

let src_nest =
  {|const int N = 8;
    const int M = 16;
    float A[N][M]; float z[N];
    void kernel() {
      for (int i = 0; i < N; i++) {
        for (int j = 0; j < M; j++) {
          z[i] += A[i][j];
        }
      }
    }
    int main() {
      for (int i = 0; i < N; i++) {
        z[i] = 0.0;
        for (int j = 0; j < M; j++) { A[i][j] = 1.0; }
      }
      kernel();
      return (int)z[0];
    }|}

let test_invariant_and_footprint () =
  let f, loops, scev, _ = analyze src_nest "kernel" in
  let inner =
    List.find (fun l -> An.Loops.is_innermost loops l) loops
  in
  let outer =
    List.find (fun l -> not (An.Loops.is_innermost loops l)) loops
  in
  let z_accesses = accesses_of f "z" in
  (* z accesses inside the inner loop body are invariant *)
  List.iter
    (fun (block, pos, _) ->
      if An.Loops.String_set.mem block inner.An.Loops.blocks then
        Alcotest.(check string) "z invariant wrt inner loop" "invariant"
          (An.Scev.pattern_to_string (An.Scev.classify scev ~block ~pos)))
    z_accesses;
  (* footprints: A over the inner loop = M; over both loops = N*M;
     z over the inner loop = 1 *)
  let a_block, a_pos, _ = List.hd (accesses_of f "A") in
  Alcotest.(check (option int)) "A inner footprint" (Some 16)
    (An.Scev.footprint scev ~block:a_block ~pos:a_pos
       ~trips:[ (inner.An.Loops.header, 16) ]);
  Alcotest.(check (option int)) "A full footprint" (Some 128)
    (An.Scev.footprint scev ~block:a_block ~pos:a_pos
       ~trips:[ (inner.An.Loops.header, 16); (outer.An.Loops.header, 8) ]);
  let z_in_inner =
    List.find
      (fun (block, _, _) -> An.Loops.String_set.mem block inner.An.Loops.blocks)
      z_accesses
  in
  let zb, zp, _ = z_in_inner in
  Alcotest.(check (option int)) "z inner footprint" (Some 1)
    (An.Scev.footprint scev ~block:zb ~pos:zp
       ~trips:[ (inner.An.Loops.header, 16) ])

let test_iv_detection () =
  let _, _, scev, _ = analyze src_nest "kernel" in
  (* the canonical IVs i and j (lowered with suffixes) are detected *)
  let f, loops, _, _ = analyze src_nest "kernel" in
  ignore f;
  Alcotest.(check int) "two loops two IVs" 2
    (List.length
       (List.filter
          (fun (l : An.Loops.loop) ->
            ignore l;
            true)
          loops));
  (* IV registers exist: detect by probing names i0/j... via is_iv on all
     registers defined in the function. *)
  let f2 = f in
  let ivs =
    List.concat_map
      (fun (b : Ir.Block.t) ->
        List.filter_map
          (fun i ->
            match Ir.Instr.def i with
            | Some r when An.Scev.is_iv scev r.Ir.Instr.id ->
              Some r.Ir.Instr.id
            | Some _ | None -> None)
          b.Ir.Block.instrs)
      f2.Ir.Func.blocks
  in
  Alcotest.(check int) "exactly two IV registers" 2
    (List.length (List.sort_uniq String.compare ivs))

let test_carried_dependencies () =
  let f, loops, scev, live = analyze src_nest "kernel" in
  let inner = List.find (fun l -> An.Loops.is_innermost loops l) loops in
  let outer = List.find (fun l -> not (An.Loops.is_innermost loops l)) loops in
  let inner_info = An.Memdep.analyze_loop f live scev inner in
  let outer_info = An.Memdep.analyze_loop f live scev outer in
  (* z[i] accumulation: carried through memory in the inner loop *)
  Alcotest.(check bool) "inner loop has carried deps" true
    (inner_info.An.Memdep.carried <> []);
  List.iter
    (fun (d : An.Memdep.carried_dep) ->
      Alcotest.(check (option int)) "distance 1" (Some 1) d.An.Memdep.distance)
    inner_info.An.Memdep.carried;
  (* across outer iterations z[i] addresses differ: no carried dep *)
  Alcotest.(check int) "outer loop carried deps" 0
    (List.length outer_info.An.Memdep.carried);
  Alcotest.(check bool) "unrolling allowed on outer" false
    (An.Memdep.has_carried_dep outer_info)

let test_scalar_recurrence () =
  let src =
    {|const int N = 16;
      float a[N]; float out[1];
      void kernel() {
        float acc = 0.0;
        for (int i = 0; i < N; i++) { acc += a[i]; }
        out[0] = acc;
      }
      int main() {
        for (int i = 0; i < N; i++) { a[i] = 1.0; }
        kernel();
        return (int)out[0];
      }|}
  in
  let f, loops, scev, live = analyze src "kernel" in
  let l = List.hd loops in
  let info = An.Memdep.analyze_loop f live scev l in
  Alcotest.(check bool) "accumulator is a recurrence" true
    (List.exists
       (fun r -> Testutil.contains r "acc")
       info.An.Memdep.recurrences);
  Alcotest.(check bool) "IV is not a recurrence" true
    (List.for_all
       (fun r -> not (An.Scev.is_iv scev r))
       info.An.Memdep.recurrences);
  Alcotest.(check bool) "carried dep blocks unrolling" true
    (An.Memdep.has_carried_dep info)

let test_distance_dependencies () =
  (* a[i] = a[i-2]: carried with distance 2; b[i] = b[i-1]: distance 1 *)
  let src =
    {|const int N = 32;
      float a[N]; float b[N];
      void kernel() {
        for (int i = 2; i < N; i++) { a[i] = a[i - 2] + 1.0; }
        for (int i = 1; i < N; i++) { b[i] = b[i - 1] * 0.5; }
      }
      int main() {
        for (int i = 0; i < N; i++) { a[i] = 1.0; b[i] = 2.0; }
        kernel();
        return (int)(a[5] + b[5]);
      }|}
  in
  let f, loops, scev, live = analyze src "kernel" in
  let distances =
    List.map
      (fun l ->
        let info = An.Memdep.analyze_loop f live scev l in
        List.filter_map (fun (d : An.Memdep.carried_dep) -> d.An.Memdep.distance)
          info.An.Memdep.carried)
      loops
  in
  let flat = List.concat distances in
  Alcotest.(check bool) "found distance 2" true (List.mem 2 flat);
  Alcotest.(check bool) "found distance 1" true (List.mem 1 flat)

let test_no_false_dependency () =
  (* writes to even elements, reads from odd: never aliases *)
  let src =
    {|const int N = 32;
      float a[N];
      void kernel() {
        for (int i = 0; i < N / 2 - 1; i++) {
          a[2 * i] = a[2 * i + 1];
        }
      }
      int main() {
        for (int i = 0; i < N; i++) { a[i] = (float)i; }
        kernel();
        return (int)a[0];
      }|}
  in
  let f, loops, scev, live = analyze src "kernel" in
  let l = List.hd loops in
  let info = An.Memdep.analyze_loop f live scev l in
  Alcotest.(check int) "no carried deps between disjoint strides" 0
    (List.length info.An.Memdep.carried)

let test_affine_algebra () =
  (* affine equality and coefficient lookup through the public API *)
  let a1 = { An.Scev.const = 3; ivs = [ ("h", 2) ]; syms = [] } in
  let a2 = { An.Scev.const = 3; ivs = [ ("h", 2) ]; syms = [] } in
  let a3 = { An.Scev.const = 3; ivs = [ ("h", 1) ]; syms = [] } in
  Alcotest.(check bool) "equal affines" true (An.Scev.affine_equal a1 a2);
  Alcotest.(check bool) "different coeffs" false (An.Scev.affine_equal a1 a3);
  Alcotest.(check int) "coeff lookup" 2 (An.Scev.coeff_of a1 "h");
  Alcotest.(check int) "missing coeff is 0" 0 (An.Scev.coeff_of a1 "nope")

let tests =
  [ Alcotest.test_case "stream classification" `Quick test_stream_classification;
    Alcotest.test_case "invariant + footprints" `Quick
      test_invariant_and_footprint;
    Alcotest.test_case "IV detection" `Quick test_iv_detection;
    Alcotest.test_case "carried deps (accumulation)" `Quick
      test_carried_dependencies;
    Alcotest.test_case "scalar recurrences" `Quick test_scalar_recurrence;
    Alcotest.test_case "dependence distances" `Quick test_distance_dependencies;
    Alcotest.test_case "no false dependencies" `Quick test_no_false_dependency;
    Alcotest.test_case "affine algebra" `Quick test_affine_algebra ]
