(* Tests for the if-conversion pass: semantic preservation (before/after
   runs agree), structural effects (diamonds collapse, loops become
   pipelineable), and safety restrictions. *)

module Ir = Cayman_ir
module An = Cayman_analysis
module Sim = Cayman_sim
module Hls = Cayman_hls

let run_program p =
  let res = Sim.Interp.run p in
  match res.Sim.Interp.return_value with
  | Some (Sim.Value.Vint n) -> n
  | Some (Sim.Value.Vfloat _ | Sim.Value.Vbool _) | None ->
    Alcotest.fail "expected int result"

(* semantic preservation: the converted program computes the same value *)
let check_preserves name src =
  let p = Cayman_frontend.Lower.compile src in
  let p' = An.Ifconv.run p in
  Ir.Validate.check_exn p';
  Alcotest.(check int) (name ^ ": same result") (run_program p) (run_program p')

let test_preserves_semantics () =
  check_preserves "max update"
    {|const int N = 20;
      int a[N];
      int main() {
        int seed = 3;
        for (int i = 0; i < N; i++) {
          seed = (seed * 97 + 13) % 1000;
          a[i] = seed;
        }
        int best = a[0];
        for (int i = 1; i < N; i++) {
          if (a[i] > best) { best = a[i]; }
        }
        return best;
      }|};
  check_preserves "if/else values"
    {|int main() {
        int s = 0;
        for (int i = 0; i < 50; i++) {
          int v = 0;
          if (i % 3 == 0) { v = i * 2; } else { v = i - 1; }
          s += v;
        }
        return s;
      }|};
  check_preserves "clamping floats"
    {|const int N = 32;
      float a[N];
      int main() {
        for (int i = 0; i < N; i++) { a[i] = (float)(i - 16) * 0.5; }
        float s = 0.0;
        for (int i = 0; i < N; i++) {
          float v = a[i];
          if (v < 0.0) { v = 0.0 - v; }
          if (v > 4.0) { v = 4.0; }
          s += v;
        }
        return (int)(s * 10.0);
      }|};
  check_preserves "nested conditionals"
    {|int main() {
        int s = 0;
        for (int i = 0; i < 40; i++) {
          int v = i;
          if (i % 2 == 0) {
            v = v + 10;
            if (i % 4 == 0) { v = v * 2; }
          }
          s += v;
        }
        return s;
      }|}

let count_blocks f = List.length f.Ir.Func.blocks

let test_triangle_collapses () =
  let p =
    Cayman_frontend.Lower.compile
      {|const int N = 8;
        int a[N];
        int kernel(int x) {
          int v = x;
          if (x > 3) { v = x * 2; }
          return v;
        }
        int main() { return kernel(5); }|}
  in
  let f = Ir.Program.func_exn p "kernel" in
  let f' = An.Ifconv.convert_func f in
  Alcotest.(check bool) "fewer blocks after conversion" true
    (count_blocks f' < count_blocks f);
  (* a select appears *)
  let has_select =
    List.exists
      (fun (b : Ir.Block.t) ->
        List.exists
          (fun i ->
            match i with
            | Ir.Instr.Select _ -> true
            | _ -> false)
          b.Ir.Block.instrs)
      f'.Ir.Func.blocks
  in
  Alcotest.(check bool) "select formed" true has_select

let test_store_arm_not_converted () =
  let p =
    Cayman_frontend.Lower.compile
      {|const int N = 8;
        int a[N];
        void kernel(int x) {
          if (x > 3) { a[0] = x; }
        }
        int main() { kernel(5); return a[0]; }|}
  in
  let f = Ir.Program.func_exn p "kernel" in
  let f' = An.Ifconv.convert_func f in
  Alcotest.(check int) "store arm untouched" (count_blocks f)
    (count_blocks f')

let test_division_arm_not_converted () =
  let p =
    Cayman_frontend.Lower.compile
      {|int kernel(int x, int d) {
          int v = 0;
          if (d != 0) { v = x / d; }
          return v;
        }
        int main() { return kernel(10, 0); }|}
  in
  let f = Ir.Program.func_exn p "kernel" in
  let f' = An.Ifconv.convert_func f in
  Alcotest.(check int) "trapping arm untouched" (count_blocks f)
    (count_blocks f');
  (* and the guarded division still works end to end *)
  let p' = An.Ifconv.run p in
  Alcotest.(check int) "division by zero still guarded" 0 (run_program p')

let test_enables_pipelining () =
  (* the nw-style min/max DP body pipelines only after if-conversion *)
  let src =
    {|const int N = 24;
      int score[N][N];
      void kernel() {
        for (int i = 1; i < N; i++) {
          for (int j = 1; j < N; j++) {
            int d = score[i - 1][j - 1] + 2;
            int u = score[i - 1][j] - 1;
            int l = score[i][j - 1] - 1;
            int best = d;
            if (u > best) { best = u; }
            if (l > best) { best = l; }
            score[i][j] = best;
          }
        }
      }
      int main() {
        for (int i = 0; i < N; i++) { score[i][0] = 0 - i; score[0][i] = 0 - i; }
        for (int t = 0; t < 5; t++) { kernel(); }
        return score[N - 1][N - 1];
      }|}
  in
  let count_pr if_convert =
    let a = Core.Cayman.analyze_source ~if_convert src in
    let r = Core.Cayman.run ~mode:Hls.Kernel.Heuristic a in
    let s = Core.Cayman.best_under_ratio r ~budget_ratio:0.65 in
    (Core.Report.totals s).Core.Report.pr
  in
  Alcotest.(check bool) "if-conversion creates pipelined regions" true
    (count_pr true > count_pr false)

let test_speedup_not_worse () =
  (* end-to-end: converted floyd-warshall beats the unconverted flow *)
  let src =
    (Cayman_suites.Suite.find_exn "floyd-warshall").Cayman_suites.Suite.source
  in
  let speedup if_convert =
    let a =
      Core.Cayman.analyze ~if_convert (Cayman_frontend.Lower.compile src)
    in
    let r = Core.Cayman.run ~mode:Hls.Kernel.Heuristic a in
    Core.Cayman.speedup a (Core.Cayman.best_under_ratio r ~budget_ratio:0.65)
  in
  Alcotest.(check bool) "if-converted flow at least as fast" true
    (speedup true >= speedup false -. 0.05)

let test_idempotent () =
  let p =
    Cayman_frontend.Lower.compile
      {|int main() {
          int s = 0;
          for (int i = 0; i < 10; i++) {
            int v = i;
            if (i > 5) { v = i * 3; }
            s += v;
          }
          return s;
        }|}
  in
  let p1 = An.Ifconv.run p in
  let p2 = An.Ifconv.run p1 in
  Alcotest.(check string) "second pass is identity"
    (Ir.Program.to_string p1) (Ir.Program.to_string p2)

let tests =
  [ Alcotest.test_case "preserves semantics" `Quick test_preserves_semantics;
    Alcotest.test_case "triangle collapses to select" `Quick
      test_triangle_collapses;
    Alcotest.test_case "store arms untouched" `Quick
      test_store_arm_not_converted;
    Alcotest.test_case "trapping arms untouched" `Quick
      test_division_arm_not_converted;
    Alcotest.test_case "enables pipelining" `Slow test_enables_pipelining;
    Alcotest.test_case "floyd-warshall not worse" `Slow test_speedup_not_worse;
    Alcotest.test_case "idempotent" `Quick test_idempotent ]
