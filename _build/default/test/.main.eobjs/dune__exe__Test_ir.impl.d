test/test_ir.ml: Alcotest Cayman_ir Format List Option Testutil
