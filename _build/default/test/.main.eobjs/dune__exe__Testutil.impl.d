test/testutil.ml: Alcotest Cayman_frontend Cayman_hls Cayman_sim Hashtbl QCheck QCheck_alcotest String
