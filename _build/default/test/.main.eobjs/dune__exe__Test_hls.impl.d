test/test_hls.ml: Alcotest Array Cayman_analysis Cayman_frontend Cayman_hls Cayman_ir Cayman_sim Hashtbl List Option Printf Testutil
