test/test_random.ml: Buffer Cayman_analysis Cayman_frontend Cayman_hls Cayman_ir Cayman_sim Core List Printf QCheck String Testutil
