test/test_analysis.ml: Alcotest Cayman_analysis Cayman_frontend Cayman_ir Cayman_suites Hashtbl List Printf String Testutil
