test/main.mli:
