test/test_suites.ml: Alcotest Cayman_analysis Cayman_frontend Cayman_ir Cayman_sim Cayman_suites List String
