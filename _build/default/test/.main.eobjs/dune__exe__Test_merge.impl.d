test/test_merge.ml: Alcotest Cayman_hls Cayman_ir Cayman_suites Core List Printf
