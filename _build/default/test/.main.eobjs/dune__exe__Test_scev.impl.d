test/test_scev.ml: Alcotest Cayman_analysis Cayman_ir List String Testutil
