test/test_frontend.ml: Alcotest Cayman_frontend Cayman_ir List Testutil
