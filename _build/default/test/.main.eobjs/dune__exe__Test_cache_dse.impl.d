test/test_cache_dse.ml: Alcotest Cayman_analysis Cayman_frontend Cayman_hls Cayman_ir Cayman_sim Hashtbl List Option Testutil
