test/test_netlist.ml: Alcotest Cayman_analysis Cayman_frontend Cayman_hls Cayman_ir Cayman_sim Cayman_suites Core Hashtbl List Option Printf String Testutil
