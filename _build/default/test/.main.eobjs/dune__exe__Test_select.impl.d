test/test_select.ml: Alcotest Cayman_analysis Cayman_baselines Cayman_hls Cayman_suites Core Float Hashtbl List Printf QCheck Testutil
