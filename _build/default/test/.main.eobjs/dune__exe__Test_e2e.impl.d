test/test_e2e.ml: Alcotest Cayman_frontend Cayman_hls Cayman_suites Core Float List Printf
