test/main.ml: Alcotest Test_analysis Test_cache_dse Test_e2e Test_frontend Test_hls Test_ifconv Test_ir Test_merge Test_netlist Test_random Test_scev Test_select Test_sim Test_suites
