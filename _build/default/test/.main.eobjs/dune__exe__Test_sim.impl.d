test/test_sim.ml: Alcotest Cayman_analysis Cayman_frontend Cayman_ir Cayman_sim Cayman_suites List Printf QCheck String Testutil
