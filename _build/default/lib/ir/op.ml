type bin =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Fadd
  | Fsub
  | Fmul
  | Fdiv

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Feq
  | Fne
  | Flt
  | Fle
  | Fgt
  | Fge

type un =
  | Neg
  | Fneg
  | Not
  | Int_of_float
  | Float_of_int

let bin_is_float = function
  | Fadd | Fsub | Fmul | Fdiv -> true
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr -> false

let cmp_is_float = function
  | Feq | Fne | Flt | Fle | Fgt | Fge -> true
  | Eq | Ne | Lt | Le | Gt | Ge -> false

let bin_operand_ty op = if bin_is_float op then Types.F32 else Types.I32
let bin_result_ty = bin_operand_ty
let cmp_operand_ty op = if cmp_is_float op then Types.F32 else Types.I32

let un_sig = function
  | Neg -> Types.I32, Types.I32
  | Fneg -> Types.F32, Types.F32
  | Not -> Types.Bool, Types.Bool
  | Int_of_float -> Types.F32, Types.I32
  | Float_of_int -> Types.I32, Types.F32

let bin_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let cmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Feq -> "feq"
  | Fne -> "fne"
  | Flt -> "flt"
  | Fle -> "fle"
  | Fgt -> "fgt"
  | Fge -> "fge"

let un_to_string = function
  | Neg -> "neg"
  | Fneg -> "fneg"
  | Not -> "not"
  | Int_of_float -> "int_of_float"
  | Float_of_int -> "float_of_int"

let pp_bin fmt op = Format.pp_print_string fmt (bin_to_string op)
let pp_cmp fmt op = Format.pp_print_string fmt (cmp_to_string op)
let pp_un fmt op = Format.pp_print_string fmt (un_to_string op)

(* Datapath unit kinds: the hardware resource class an operation maps to.
   This is the granularity at which the technology table assigns delay and
   area, and at which accelerator merging shares units. *)
type unit_kind =
  | U_int_add (* add/sub/neg *)
  | U_int_mul
  | U_int_div (* div/rem *)
  | U_int_logic (* and/or/xor/not *)
  | U_int_shift
  | U_int_cmp
  | U_float_add (* fadd/fsub/fneg *)
  | U_float_mul
  | U_float_div
  | U_float_cmp
  | U_convert
  | U_select

let all_unit_kinds =
  [ U_int_add; U_int_mul; U_int_div; U_int_logic; U_int_shift; U_int_cmp;
    U_float_add; U_float_mul; U_float_div; U_float_cmp; U_convert; U_select ]

let unit_of_bin = function
  | Add | Sub -> U_int_add
  | Mul -> U_int_mul
  | Div | Rem -> U_int_div
  | And | Or | Xor -> U_int_logic
  | Shl | Shr -> U_int_shift
  | Fadd | Fsub -> U_float_add
  | Fmul -> U_float_mul
  | Fdiv -> U_float_div

let unit_of_cmp op = if cmp_is_float op then U_float_cmp else U_int_cmp

let unit_of_un = function
  | Neg -> U_int_add
  | Fneg -> U_float_add
  | Not -> U_int_logic
  | Int_of_float | Float_of_int -> U_convert

let unit_kind_to_string = function
  | U_int_add -> "int_add"
  | U_int_mul -> "int_mul"
  | U_int_div -> "int_div"
  | U_int_logic -> "int_logic"
  | U_int_shift -> "int_shift"
  | U_int_cmp -> "int_cmp"
  | U_float_add -> "float_add"
  | U_float_mul -> "float_mul"
  | U_float_div -> "float_div"
  | U_float_cmp -> "float_cmp"
  | U_convert -> "convert"
  | U_select -> "select"

let pp_unit_kind fmt k = Format.pp_print_string fmt (unit_kind_to_string k)
