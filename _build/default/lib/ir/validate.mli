(** Well-formedness checks for IR programs.

    Checks per function: non-empty body, unique labels, branch targets
    exist, operand and instruction typing, known globals and callees, and
    a forward must-defined data-flow analysis that flags registers possibly
    read before written. Program-level: main exists, globals are unique
    with positive sizes, function names are unique. *)

type error = { where : string; message : string }

val pp_error : Format.formatter -> error -> unit
val check : Program.t -> (unit, error list) result
val check_func : Program.t -> Func.t -> error list

(** @raise Invalid_argument listing all errors if the program is ill-formed. *)
val check_exn : Program.t -> unit
