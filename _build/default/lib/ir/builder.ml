type block_state = {
  label : string;
  mutable instrs_rev : Instr.t list;
  mutable term : Instr.term option;
}

type t = {
  fname : string;
  params : Instr.reg list;
  ret : Types.t option;
  mutable blocks_rev : block_state list;
  mutable current : block_state option;
  mutable next_reg : int;
  mutable next_label : int;
}

let create ~name ~params ~ret =
  { fname = name; params; ret; blocks_rev = []; current = None;
    next_reg = 0; next_label = 0 }

let fresh_reg ?(hint = "t") b ty =
  let n = b.next_reg in
  b.next_reg <- n + 1;
  Instr.reg (Printf.sprintf "%s%d" hint n) ty

let fresh_label ?(hint = "bb") b =
  let n = b.next_label in
  b.next_label <- n + 1;
  Printf.sprintf "%s%d" hint n

let add_block ?hint b =
  let label =
    match hint with
    | Some h -> fresh_label ~hint:h b
    | None -> fresh_label b
  in
  let bs = { label; instrs_rev = []; term = None } in
  b.blocks_rev <- bs :: b.blocks_rev;
  label

let find_state b label =
  List.find_opt (fun bs -> String.equal bs.label label) b.blocks_rev

let set_current b label =
  match find_state b label with
  | Some bs -> b.current <- Some bs
  | None -> invalid_arg ("Builder.set_current: unknown block " ^ label)

let current_label b =
  match b.current with
  | Some bs -> bs.label
  | None -> invalid_arg "Builder.current_label: no current block"

let emit b instr =
  match b.current with
  | Some bs ->
    if Option.is_some bs.term then
      invalid_arg ("Builder.emit: block " ^ bs.label ^ " already terminated");
    bs.instrs_rev <- instr :: bs.instrs_rev
  | None -> invalid_arg "Builder.emit: no current block"

let terminate b term =
  match b.current with
  | Some bs ->
    (match bs.term with
     | Some _ ->
       invalid_arg
         ("Builder.terminate: block " ^ bs.label ^ " already terminated")
     | None -> bs.term <- Some term)
  | None -> invalid_arg "Builder.terminate: no current block"

let is_terminated b =
  match b.current with
  | Some bs -> Option.is_some bs.term
  | None -> invalid_arg "Builder.is_terminated: no current block"

(* Convenience emitters returning the defined register. *)

let assign b ?hint ty v =
  let r = fresh_reg ?hint b ty in
  emit b (Instr.Assign (r, v));
  r

let binary b ?hint op x y =
  let r = fresh_reg ?hint b (Op.bin_result_ty op) in
  emit b (Instr.Binary (r, op, x, y));
  r

let unary b ?hint op x =
  let _, ret_ty = Op.un_sig op in
  let r = fresh_reg ?hint b ret_ty in
  emit b (Instr.Unary (r, op, x));
  r

let compare b ?hint op x y =
  let r = fresh_reg ?hint b Types.Bool in
  emit b (Instr.Compare (r, op, x, y));
  r

let select b ?hint ty c x y =
  let r = fresh_reg ?hint b ty in
  emit b (Instr.Select (r, c, x, y));
  r

let load b ?hint ty ~base ~index =
  let r = fresh_reg ?hint b ty in
  emit b (Instr.Load (r, { Instr.base; index }));
  r

let store b ~base ~index v = emit b (Instr.Store ({ Instr.base; index }, v))

let finish b =
  let blocks =
    List.rev_map
      (fun bs ->
        match bs.term with
        | Some term ->
          Block.v ~label:bs.label ~instrs:(List.rev bs.instrs_rev) ~term
        | None ->
          invalid_arg
            (Printf.sprintf "Builder.finish: block %s of %s not terminated"
               bs.label b.fname))
      b.blocks_rev
  in
  Func.v ~name:b.fname ~params:b.params ~ret:b.ret ~blocks
