(** Instructions of the register-based IR.

    The IR is not SSA: a virtual register may be written several times.
    Data-flow graphs are recovered per basic block from local def-use
    chains (see {!Cayman_hls.Dfg}). Memory references carry a symbolic
    array base and an element-granular index, so distinct arrays never
    alias. *)

type reg = { id : string; ty : Types.t }

type operand =
  | Reg of reg
  | Imm_int of int
  | Imm_float of float
  | Imm_bool of bool

(** A memory reference: [base] names a program global (array), [index] is
    an element index into it. *)
type mem_ref = { base : string; index : operand }

type t =
  | Assign of reg * operand
  | Unary of reg * Op.un * operand
  | Binary of reg * Op.bin * operand * operand
  | Compare of reg * Op.cmp * operand * operand
  | Select of reg * operand * operand * operand  (** [r = c ? a : b] *)
  | Load of reg * mem_ref
  | Store of mem_ref * operand
  | Call of reg option * string * operand list

(** Block terminators. *)
type term =
  | Jump of string
  | Branch of operand * string * string  (** [Branch (cond, if_true, if_false)] *)
  | Return of operand option

val reg : string -> Types.t -> reg
val reg_equal : reg -> reg -> bool
val operand_ty : operand -> Types.t

(** Register defined by the instruction, if any. *)
val def : t -> reg option

(** Registers read by the instruction. *)
val uses : t -> reg list

val term_uses : term -> reg list
val term_succs : term -> string list

(** Memory reference of a load/store, if any. *)
val mem_ref_of : t -> mem_ref option

val is_mem : t -> bool
val is_call : t -> bool

(** Hardware resource class of a compute instruction; [None] for moves,
    memory operations and calls. *)
val unit_kind : t -> Op.unit_kind option

val pp_reg : Format.formatter -> reg -> unit
val pp_operand : Format.formatter -> operand -> unit
val pp_mem_ref : Format.formatter -> mem_ref -> unit
val pp : Format.formatter -> t -> unit
val pp_term : Format.formatter -> term -> unit
