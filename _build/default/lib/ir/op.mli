(** Operators of the IR and their datapath resource classes. *)

(** Binary arithmetic / bitwise operators. [F]-prefixed operators work on
    {!Types.F32}; all others on {!Types.I32}. *)
type bin =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Fadd
  | Fsub
  | Fmul
  | Fdiv

(** Comparison operators; result type is always {!Types.Bool}. *)
type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Feq
  | Fne
  | Flt
  | Fle
  | Fgt
  | Fge

(** Unary operators, including int/float conversions. *)
type un =
  | Neg
  | Fneg
  | Not
  | Int_of_float
  | Float_of_int

val bin_is_float : bin -> bool
val cmp_is_float : cmp -> bool

val bin_operand_ty : bin -> Types.t
val bin_result_ty : bin -> Types.t
val cmp_operand_ty : cmp -> Types.t

(** [un_sig op] is [(operand_ty, result_ty)]. *)
val un_sig : un -> Types.t * Types.t

val bin_to_string : bin -> string
val cmp_to_string : cmp -> string
val un_to_string : un -> string
val pp_bin : Format.formatter -> bin -> unit
val pp_cmp : Format.formatter -> cmp -> unit
val pp_un : Format.formatter -> un -> unit

(** Hardware resource class of an operation: the granularity at which the
    technology table assigns delay/area and at which accelerator merging
    shares datapath units. *)
type unit_kind =
  | U_int_add
  | U_int_mul
  | U_int_div
  | U_int_logic
  | U_int_shift
  | U_int_cmp
  | U_float_add
  | U_float_mul
  | U_float_div
  | U_float_cmp
  | U_convert
  | U_select

val all_unit_kinds : unit_kind list
val unit_of_bin : bin -> unit_kind
val unit_of_cmp : cmp -> unit_kind
val unit_of_un : un -> unit_kind
val unit_kind_to_string : unit_kind -> string
val pp_unit_kind : Format.formatter -> unit_kind -> unit
