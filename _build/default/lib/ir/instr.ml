type reg = { id : string; ty : Types.t }

type operand =
  | Reg of reg
  | Imm_int of int
  | Imm_float of float
  | Imm_bool of bool

type mem_ref = { base : string; index : operand }

type t =
  | Assign of reg * operand
  | Unary of reg * Op.un * operand
  | Binary of reg * Op.bin * operand * operand
  | Compare of reg * Op.cmp * operand * operand
  | Select of reg * operand * operand * operand
  | Load of reg * mem_ref
  | Store of mem_ref * operand
  | Call of reg option * string * operand list

type term =
  | Jump of string
  | Branch of operand * string * string
  | Return of operand option

let reg id ty = { id; ty }
let reg_equal a b = String.equal a.id b.id && Types.equal a.ty b.ty

let operand_ty = function
  | Reg r -> r.ty
  | Imm_int _ -> Types.I32
  | Imm_float _ -> Types.F32
  | Imm_bool _ -> Types.Bool

let def = function
  | Assign (r, _) | Unary (r, _, _) | Binary (r, _, _, _)
  | Compare (r, _, _, _) | Select (r, _, _, _) | Load (r, _) ->
    Some r
  | Store (_, _) -> None
  | Call (r, _, _) -> r

let operand_uses = function
  | Reg r -> [ r ]
  | Imm_int _ | Imm_float _ | Imm_bool _ -> []

let uses = function
  | Assign (_, a) | Unary (_, _, a) -> operand_uses a
  | Binary (_, _, a, b) | Compare (_, _, a, b) ->
    operand_uses a @ operand_uses b
  | Select (_, c, a, b) ->
    operand_uses c @ operand_uses a @ operand_uses b
  | Load (_, m) -> operand_uses m.index
  | Store (m, v) -> operand_uses m.index @ operand_uses v
  | Call (_, _, args) -> List.concat_map operand_uses args

let term_uses = function
  | Jump _ -> []
  | Branch (c, _, _) -> operand_uses c
  | Return (Some v) -> operand_uses v
  | Return None -> []

let term_succs = function
  | Jump l -> [ l ]
  | Branch (_, t, f) -> [ t; f ]
  | Return _ -> []

let mem_ref_of = function
  | Load (_, m) | Store (m, _) -> Some m
  | Assign _ | Unary _ | Binary _ | Compare _ | Select _ | Call _ -> None

let is_mem i = Option.is_some (mem_ref_of i)

let is_call = function
  | Call _ -> true
  | Assign _ | Unary _ | Binary _ | Compare _ | Select _ | Load _ | Store _ ->
    false

(* Datapath unit kind of a compute instruction. [Assign] is a wire,
   loads/stores map to interface resources, calls never reach hardware. *)
let unit_kind = function
  | Unary (_, op, _) -> Some (Op.unit_of_un op)
  | Binary (_, op, _, _) -> Some (Op.unit_of_bin op)
  | Compare (_, op, _, _) -> Some (Op.unit_of_cmp op)
  | Select (_, _, _, _) -> Some Op.U_select
  | Assign _ | Load _ | Store _ | Call _ -> None

let pp_reg fmt r = Format.fprintf fmt "%%%s:%a" r.id Types.pp r.ty

let pp_operand fmt = function
  | Reg r -> pp_reg fmt r
  | Imm_int n -> Format.pp_print_int fmt n
  | Imm_float x -> Format.fprintf fmt "%g" x
  | Imm_bool b -> Format.pp_print_bool fmt b

let pp_mem_ref fmt m =
  Format.fprintf fmt "%s[%a]" m.base pp_operand m.index

let pp fmt = function
  | Assign (r, a) -> Format.fprintf fmt "%a = %a" pp_reg r pp_operand a
  | Unary (r, op, a) ->
    Format.fprintf fmt "%a = %a %a" pp_reg r Op.pp_un op pp_operand a
  | Binary (r, op, a, b) ->
    Format.fprintf fmt "%a = %a %a, %a" pp_reg r Op.pp_bin op pp_operand a
      pp_operand b
  | Compare (r, op, a, b) ->
    Format.fprintf fmt "%a = %a %a, %a" pp_reg r Op.pp_cmp op pp_operand a
      pp_operand b
  | Select (r, c, a, b) ->
    Format.fprintf fmt "%a = select %a, %a, %a" pp_reg r pp_operand c
      pp_operand a pp_operand b
  | Load (r, m) -> Format.fprintf fmt "%a = load %a" pp_reg r pp_mem_ref m
  | Store (m, v) -> Format.fprintf fmt "store %a, %a" pp_mem_ref m pp_operand v
  | Call (Some r, f, args) ->
    Format.fprintf fmt "%a = call %s(%a)" pp_reg r f
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_operand)
      args
  | Call (None, f, args) ->
    Format.fprintf fmt "call %s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_operand)
      args

let pp_term fmt = function
  | Jump l -> Format.fprintf fmt "jump %s" l
  | Branch (c, t, f) -> Format.fprintf fmt "branch %a, %s, %s" pp_operand c t f
  | Return (Some v) -> Format.fprintf fmt "return %a" pp_operand v
  | Return None -> Format.pp_print_string fmt "return"
