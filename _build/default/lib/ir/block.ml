type t = { label : string; instrs : Instr.t list; term : Instr.term }

let v ~label ~instrs ~term = { label; instrs; term }
let succs b = Instr.term_succs b.term

let defs b =
  List.filter_map Instr.def b.instrs

let mem_instrs b = List.filter Instr.is_mem b.instrs

let pp fmt b =
  Format.fprintf fmt "@[<v 2>%s:" b.label;
  List.iter (fun i -> Format.fprintf fmt "@,%a" Instr.pp i) b.instrs;
  Format.fprintf fmt "@,%a@]" Instr.pp_term b.term
