(** Whole programs: global arrays plus functions, with a designated entry
    function. *)

type global = { gname : string; elem : Types.t; dims : int list }

(** Number of elements (product of dims). *)
val global_size : global -> int

type t = { globals : global list; funcs : Func.t list; main : string }

val v : globals:global list -> funcs:Func.t list -> main:string -> t
val find_func : t -> string -> Func.t option

(** @raise Invalid_argument if the function does not exist. *)
val func_exn : t -> string -> Func.t

val main_func : t -> Func.t
val find_global : t -> string -> global option

(** @raise Invalid_argument if the global does not exist. *)
val global_exn : t -> string -> global

val pp : Format.formatter -> t -> unit
val to_string : t -> string
