type global = { gname : string; elem : Types.t; dims : int list }

let global_size g = List.fold_left ( * ) 1 g.dims

type t = { globals : global list; funcs : Func.t list; main : string }

let v ~globals ~funcs ~main = { globals; funcs; main }

let find_func p name =
  List.find_opt (fun (f : Func.t) -> String.equal f.Func.name name) p.funcs

let func_exn p name =
  match find_func p name with
  | Some f -> f
  | None -> invalid_arg ("Program.func_exn: no function " ^ name)

let main_func p = func_exn p p.main

let find_global p name =
  List.find_opt (fun g -> String.equal g.gname name) p.globals

let global_exn p name =
  match find_global p name with
  | Some g -> g
  | None -> invalid_arg ("Program.global_exn: no global " ^ name)

let pp fmt p =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun g ->
      Format.fprintf fmt "global %a %s[%s]@,"
        Types.pp g.elem g.gname
        (String.concat "][" (List.map string_of_int g.dims)))
    p.globals;
  List.iteri
    (fun i f ->
      if i > 0 then Format.pp_print_cut fmt ();
      Func.pp fmt f)
    p.funcs;
  Format.fprintf fmt "@]"

let to_string p = Format.asprintf "%a" pp p
