(** Value types of the IR.

    The IR is deliberately small: machine integers ([I32], also used for
    array indices), floating point ([F32]) and booleans produced by
    comparisons. *)

type t =
  | I32
  | F32
  | Bool

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [is_numeric ty] is true for [I32] and [F32]. *)
val is_numeric : t -> bool
