(** IR functions: an ordered list of basic blocks; the first block is the
    entry. Parameters are scalar registers; arrays are program globals. *)

type t = {
  name : string;
  params : Instr.reg list;
  ret : Types.t option;
  blocks : Block.t list;
}

val v :
  name:string ->
  params:Instr.reg list ->
  ret:Types.t option ->
  blocks:Block.t list ->
  t

(** Entry block (head of [blocks]).
    @raise Invalid_argument if the function has no blocks. *)
val entry : t -> Block.t

val find_block : t -> string -> Block.t option

(** @raise Invalid_argument if the label does not exist. *)
val block_exn : t -> string -> Block.t

val labels : t -> string list

(** Map from block label to its predecessors' labels. *)
val preds : t -> (string, string list) Hashtbl.t

val instr_count : t -> int
val pp : Format.formatter -> t -> unit
