type t = {
  name : string;
  params : Instr.reg list;
  ret : Types.t option;
  blocks : Block.t list;
}

let v ~name ~params ~ret ~blocks = { name; params; ret; blocks }

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg ("Func.entry: function " ^ f.name ^ " has no blocks")

let find_block f label =
  List.find_opt (fun (b : Block.t) -> String.equal b.label label) f.blocks

let block_exn f label =
  match find_block f label with
  | Some b -> b
  | None -> invalid_arg ("Func.block_exn: no block " ^ label ^ " in " ^ f.name)

let labels f = List.map (fun (b : Block.t) -> b.Block.label) f.blocks

(* Predecessor map: label -> labels of blocks branching to it. *)
let preds f =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (b : Block.t) -> Hashtbl.replace tbl b.Block.label []) f.blocks;
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt tbl s with
          | Some ps -> Hashtbl.replace tbl s (b.Block.label :: ps)
          | None -> ())
        (Block.succs b))
    f.blocks;
  tbl

let instr_count f =
  List.fold_left (fun acc (b : Block.t) -> acc + List.length b.Block.instrs) 0 f.blocks

let pp fmt f =
  let pp_param fmt (r : Instr.reg) = Instr.pp_reg fmt r in
  Format.fprintf fmt "@[<v 2>func %s(%a)%s {" f.name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_param)
    f.params
    (match f.ret with
     | Some ty -> " : " ^ Types.to_string ty
     | None -> "");
  List.iter (fun b -> Format.fprintf fmt "@,%a" Block.pp b) f.blocks;
  Format.fprintf fmt "@]@,}"
