type t =
  | I32
  | F32
  | Bool

let equal a b =
  match a, b with
  | I32, I32 | F32, F32 | Bool, Bool -> true
  | (I32 | F32 | Bool), _ -> false

let to_string = function
  | I32 -> "i32"
  | F32 -> "f32"
  | Bool -> "bool"

let pp fmt ty = Format.pp_print_string fmt (to_string ty)

let is_numeric = function
  | I32 | F32 -> true
  | Bool -> false
