(** Imperative function builder used by the frontend and by tests.

    Usage: [create], [add_block] + [set_current], [emit]/convenience
    emitters, [terminate], then [finish] to obtain an immutable
    {!Func.t}. The first block added is the entry block. *)

type t

val create :
  name:string -> params:Instr.reg list -> ret:Types.t option -> t

(** Fresh register named [<hint><n>] (default hint ["t"]). *)
val fresh_reg : ?hint:string -> t -> Types.t -> Instr.reg

val fresh_label : ?hint:string -> t -> string

(** Adds an (empty, unterminated) block and returns its label. Does not
    change the current block. *)
val add_block : ?hint:string -> t -> string

val set_current : t -> string -> unit
val current_label : t -> string

(** @raise Invalid_argument if there is no current block or it is already
    terminated. *)
val emit : t -> Instr.t -> unit

val terminate : t -> Instr.term -> unit
val is_terminated : t -> bool

val assign : t -> ?hint:string -> Types.t -> Instr.operand -> Instr.reg
val binary :
  t -> ?hint:string -> Op.bin -> Instr.operand -> Instr.operand -> Instr.reg
val unary : t -> ?hint:string -> Op.un -> Instr.operand -> Instr.reg
val compare :
  t -> ?hint:string -> Op.cmp -> Instr.operand -> Instr.operand -> Instr.reg
val select :
  t ->
  ?hint:string ->
  Types.t ->
  Instr.operand ->
  Instr.operand ->
  Instr.operand ->
  Instr.reg
val load :
  t -> ?hint:string -> Types.t -> base:string -> index:Instr.operand ->
  Instr.reg
val store : t -> base:string -> index:Instr.operand -> Instr.operand -> unit

(** @raise Invalid_argument if any block lacks a terminator. *)
val finish : t -> Func.t
