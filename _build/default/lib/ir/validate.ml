module String_set = Set.Make (String)
module String_map = Map.Make (String)

type error = { where : string; message : string }

let err where fmt = Format.kasprintf (fun message -> { where; message }) fmt

let pp_error fmt e = Format.fprintf fmt "%s: %s" e.where e.message

(* Per-function checks that do not need data-flow: label uniqueness, branch
   targets, operand/instruction typing, global and call references. *)
let check_structure (p : Program.t) (f : Func.t) =
  let errors = ref [] in
  let add e = errors := e :: !errors in
  let where label = Printf.sprintf "%s/%s" f.Func.name label in
  let labels = Func.labels f in
  let label_set = String_set.of_list labels in
  if List.length labels <> String_set.cardinal label_set then
    add (err f.Func.name "duplicate block labels");
  if f.Func.blocks = [] then add (err f.Func.name "function has no blocks");
  (* Register typing: each register id must have a single type. *)
  let reg_ty : Types.t String_map.t ref = ref String_map.empty in
  let note_reg w (r : Instr.reg) =
    match String_map.find_opt r.Instr.id !reg_ty with
    | None -> reg_ty := String_map.add r.Instr.id r.Instr.ty !reg_ty
    | Some ty ->
      if not (Types.equal ty r.Instr.ty) then
        add
          (err w "register %%%s used at both %s and %s" r.Instr.id
             (Types.to_string ty)
             (Types.to_string r.Instr.ty))
  in
  List.iter (note_reg f.Func.name) f.Func.params;
  let expect w what want (o : Instr.operand) =
    let got = Instr.operand_ty o in
    if not (Types.equal want got) then
      add
        (err w "%s: expected %s, got %s" what (Types.to_string want)
           (Types.to_string got))
  in
  let check_mem w (m : Instr.mem_ref) =
    (match Program.find_global p m.Instr.base with
     | Some _ -> ()
     | None -> add (err w "unknown global %s" m.Instr.base));
    expect w "memory index" Types.I32 m.Instr.index
  in
  let elem_ty (m : Instr.mem_ref) =
    match Program.find_global p m.Instr.base with
    | Some g -> Some g.Program.elem
    | None -> None
  in
  let check_instr w (i : Instr.t) =
    List.iter (note_reg w) (Instr.uses i);
    Option.iter (note_reg w) (Instr.def i);
    match i with
    | Instr.Assign (r, a) -> expect w "assign" r.Instr.ty a
    | Instr.Unary (r, op, a) ->
      let arg_ty, ret_ty = Op.un_sig op in
      expect w (Op.un_to_string op) arg_ty a;
      if not (Types.equal r.Instr.ty ret_ty) then
        add (err w "%s result must be %s" (Op.un_to_string op)
               (Types.to_string ret_ty))
    | Instr.Binary (r, op, a, b) ->
      let ty = Op.bin_operand_ty op in
      expect w (Op.bin_to_string op) ty a;
      expect w (Op.bin_to_string op) ty b;
      if not (Types.equal r.Instr.ty (Op.bin_result_ty op)) then
        add (err w "%s result type mismatch" (Op.bin_to_string op))
    | Instr.Compare (r, op, a, b) ->
      let ty = Op.cmp_operand_ty op in
      expect w (Op.cmp_to_string op) ty a;
      expect w (Op.cmp_to_string op) ty b;
      if not (Types.equal r.Instr.ty Types.Bool) then
        add (err w "compare result must be bool")
    | Instr.Select (r, c, a, b) ->
      expect w "select condition" Types.Bool c;
      expect w "select" r.Instr.ty a;
      expect w "select" r.Instr.ty b
    | Instr.Load (r, m) ->
      check_mem w m;
      (match elem_ty m with
       | Some ty when not (Types.equal ty r.Instr.ty) ->
         add (err w "load type mismatch on %s" m.Instr.base)
       | Some _ | None -> ())
    | Instr.Store (m, v) ->
      check_mem w m;
      (match elem_ty m with
       | Some ty -> expect w "store value" ty v
       | None -> ())
    | Instr.Call (r, callee, args) ->
      (match Program.find_func p callee with
       | None -> add (err w "unknown function %s" callee)
       | Some g ->
         if List.length args <> List.length g.Func.params then
           add (err w "call %s: arity mismatch" callee)
         else
           List.iter2
             (fun (param : Instr.reg) a ->
               expect w ("call " ^ callee) param.Instr.ty a)
             g.Func.params args;
         (match r, g.Func.ret with
          | Some r, Some ty when not (Types.equal r.Instr.ty ty) ->
            add (err w "call %s: result type mismatch" callee)
          | Some _, None -> add (err w "call %s: void result used" callee)
          | Some _, Some _ | None, (Some _ | None) -> ()))
  in
  let check_term w (t : Instr.term) =
    List.iter (note_reg w) (Instr.term_uses t);
    List.iter
      (fun s ->
        if not (String_set.mem s label_set) then
          add (err w "branch to unknown block %s" s))
      (Instr.term_succs t);
    match t with
    | Instr.Branch (c, _, _) ->
      if not (Types.equal (Instr.operand_ty c) Types.Bool) then
        add (err w "branch condition must be bool")
    | Instr.Return (Some v) ->
      (match f.Func.ret with
       | Some ty ->
         if not (Types.equal (Instr.operand_ty v) ty) then
           add (err w "return type mismatch")
       | None -> add (err w "value returned from void function"))
    | Instr.Return None ->
      (match f.Func.ret with
       | Some _ -> add (err w "missing return value")
       | None -> ())
    | Instr.Jump _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      let w = where b.Block.label in
      List.iter (check_instr w) b.Block.instrs;
      check_term w b.Block.term)
    f.Func.blocks;
  List.rev !errors

(* Forward must-defined analysis: flags registers that may be read before
   any write on some path from the entry. *)
let check_init (f : Func.t) =
  let errors = ref [] in
  let params = String_set.of_list (List.map (fun (r : Instr.reg) -> r.Instr.id) f.Func.params) in
  let in_sets : (string, String_set.t) Hashtbl.t = Hashtbl.create 16 in
  let preds = Func.preds f in
  let entry = (Func.entry f).Block.label in
  let all_regs =
    List.fold_left
      (fun acc (b : Block.t) ->
        List.fold_left
          (fun acc i ->
            match Instr.def i with
            | Some r -> String_set.add r.Instr.id acc
            | None -> acc)
          acc b.Block.instrs)
      params f.Func.blocks
  in
  List.iter
    (fun (b : Block.t) ->
      Hashtbl.replace in_sets b.Block.label
        (if String.equal b.Block.label entry then params else all_regs))
    f.Func.blocks;
  let out_of label =
    let b = Func.block_exn f label in
    let init = Hashtbl.find in_sets label in
    List.fold_left
      (fun acc i ->
        match Instr.def i with
        | Some r -> String_set.add r.Instr.id acc
        | None -> acc)
      init b.Block.instrs
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Block.t) ->
        let label = b.Block.label in
        if not (String.equal label entry) then begin
          let ps = try Hashtbl.find preds label with Not_found -> [] in
          let inter =
            match ps with
            | [] -> params
            | p0 :: rest ->
              List.fold_left
                (fun acc p -> String_set.inter acc (out_of p))
                (out_of p0) rest
          in
          let old = Hashtbl.find in_sets label in
          if not (String_set.equal old inter) then begin
            Hashtbl.replace in_sets label inter;
            changed := true
          end
        end)
      f.Func.blocks
  done;
  List.iter
    (fun (b : Block.t) ->
      let w = Printf.sprintf "%s/%s" f.Func.name b.Block.label in
      let defined = ref (Hashtbl.find in_sets b.Block.label) in
      let check_use (r : Instr.reg) =
        if not (String_set.mem r.Instr.id !defined) then
          errors :=
            err w "register %%%s may be read before it is written" r.Instr.id
            :: !errors
      in
      List.iter
        (fun i ->
          List.iter check_use (Instr.uses i);
          match Instr.def i with
          | Some r -> defined := String_set.add r.Instr.id !defined
          | None -> ())
        b.Block.instrs;
      List.iter check_use (Instr.term_uses b.Block.term))
    f.Func.blocks;
  List.rev !errors

let check_func p f =
  if f.Func.blocks = [] then [ err f.Func.name "function has no blocks" ]
  else check_structure p f @ check_init f

let check (p : Program.t) =
  let errors = ref [] in
  (match Program.find_func p p.Program.main with
   | None -> errors := [ err "program" "missing main function %s" p.Program.main ]
   | Some _ -> ());
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (g : Program.global) ->
      if Hashtbl.mem seen g.Program.gname then
        errors := err "program" "duplicate global %s" g.Program.gname :: !errors;
      Hashtbl.replace seen g.Program.gname ();
      if Program.global_size g <= 0 then
        errors := err g.Program.gname "global has non-positive size" :: !errors)
    p.Program.globals;
  let fseen = Hashtbl.create 8 in
  List.iter
    (fun (f : Func.t) ->
      if Hashtbl.mem fseen f.Func.name then
        errors := err "program" "duplicate function %s" f.Func.name :: !errors;
      Hashtbl.replace fseen f.Func.name ();
      errors := List.rev_append (List.rev (check_func p f)) !errors)
    p.Program.funcs;
  match List.rev !errors with
  | [] -> Ok ()
  | es -> Error es

let check_exn p =
  match check p with
  | Ok () -> ()
  | Error es ->
    let msg =
      String.concat "\n"
        (List.map (fun e -> Format.asprintf "%a" pp_error e) es)
    in
    invalid_arg ("Validate.check_exn:\n" ^ msg)
