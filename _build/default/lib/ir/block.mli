(** Basic blocks: a labelled straight-line instruction sequence ending in a
    single terminator. *)

type t = { label : string; instrs : Instr.t list; term : Instr.term }

val v : label:string -> instrs:Instr.t list -> term:Instr.term -> t

(** Successor labels, in branch order. *)
val succs : t -> string list

(** Registers defined in the block, in program order (with repeats). *)
val defs : t -> Instr.reg list

(** Load/store instructions of the block, in program order. *)
val mem_instrs : t -> Instr.t list

val pp : Format.formatter -> t -> unit
