lib/ir/builder.ml: Block Func Instr List Op Option Printf String Types
