lib/ir/op.mli: Format Types
