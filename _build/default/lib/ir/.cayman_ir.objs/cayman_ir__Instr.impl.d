lib/ir/instr.ml: Format List Op Option String Types
