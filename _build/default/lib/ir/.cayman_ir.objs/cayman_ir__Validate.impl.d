lib/ir/validate.ml: Block Format Func Hashtbl Instr List Map Op Option Printf Program Set String Types
