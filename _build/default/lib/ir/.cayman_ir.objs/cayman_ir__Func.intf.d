lib/ir/func.mli: Block Format Hashtbl Instr Types
