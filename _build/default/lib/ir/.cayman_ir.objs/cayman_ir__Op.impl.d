lib/ir/op.ml: Format Types
