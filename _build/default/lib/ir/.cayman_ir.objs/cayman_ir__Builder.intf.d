lib/ir/builder.mli: Func Instr Op Types
