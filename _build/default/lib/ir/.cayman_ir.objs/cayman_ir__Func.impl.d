lib/ir/func.ml: Block Format Hashtbl Instr List String Types
