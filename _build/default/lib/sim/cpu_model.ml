module Ir = Cayman_ir

(* In-order scalar host model, one instruction at a time, fixed per-op
   costs. Load/store costs are averages over the memory hierarchy
   (hit-dominated but including miss stalls), which is what makes off-core
   data access interfaces worth specializing in the first place. The host
   runs at 1 GHz, matching the application-class embedded profile of the
   CVA6 tile the paper normalizes against. *)

let cpu_freq_hz = 1.0e9

let call_overhead = 2

let bin_cycles (op : Ir.Op.bin) =
  match op with
  | Ir.Op.Add | Ir.Op.Sub | Ir.Op.And | Ir.Op.Or | Ir.Op.Xor | Ir.Op.Shl
  | Ir.Op.Shr ->
    1
  | Ir.Op.Mul -> 3
  | Ir.Op.Div | Ir.Op.Rem -> 12
  | Ir.Op.Fadd | Ir.Op.Fsub -> 3
  | Ir.Op.Fmul -> 4
  | Ir.Op.Fdiv -> 15

let un_cycles (op : Ir.Op.un) =
  match op with
  | Ir.Op.Neg | Ir.Op.Not -> 1
  | Ir.Op.Fneg -> 1
  | Ir.Op.Int_of_float | Ir.Op.Float_of_int -> 2

let cmp_cycles (op : Ir.Op.cmp) = if Ir.Op.cmp_is_float op then 2 else 1

let instr_cycles (i : Ir.Instr.t) =
  match i with
  | Ir.Instr.Assign _ -> 1
  | Ir.Instr.Unary (_, op, _) -> un_cycles op
  | Ir.Instr.Binary (_, op, _, _) -> bin_cycles op
  | Ir.Instr.Compare (_, op, _, _) -> cmp_cycles op
  | Ir.Instr.Select _ -> 1
  | Ir.Instr.Load _ -> 8
  | Ir.Instr.Store _ -> 3
  | Ir.Instr.Call _ -> call_overhead

let term_cycles (t : Ir.Instr.term) =
  match t with
  | Ir.Instr.Jump _ -> 1
  | Ir.Instr.Branch _ -> 1
  | Ir.Instr.Return _ -> 1

let block_cycles (b : Ir.Block.t) =
  List.fold_left (fun acc i -> acc + instr_cycles i) 0 b.Ir.Block.instrs
  + term_cycles b.Ir.Block.term

let seconds_of_cycles c = float_of_int c /. cpu_freq_hz
