module Ir = Cayman_ir

exception Fault of string

type cell =
  | Ints of int array
  | Floats of float array

type t = (string, cell) Hashtbl.t

let create (p : Ir.Program.t) : t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (g : Ir.Program.global) ->
      let n = Ir.Program.global_size g in
      let cell =
        match g.Ir.Program.elem with
        | Ir.Types.F32 -> Floats (Array.make n 0.0)
        | Ir.Types.I32 | Ir.Types.Bool -> Ints (Array.make n 0)
      in
      Hashtbl.replace tbl g.Ir.Program.gname cell)
    p.Ir.Program.globals;
  tbl

let cell_exn t base =
  match Hashtbl.find_opt t base with
  | Some c -> c
  | None -> raise (Fault ("unknown array " ^ base))

let bounds base idx n =
  if idx < 0 || idx >= n then
    raise
      (Fault (Printf.sprintf "index %d out of bounds for %s[%d]" idx base n))

let load t ~base ~index =
  match cell_exn t base with
  | Ints a ->
    bounds base index (Array.length a);
    Value.Vint a.(index)
  | Floats a ->
    bounds base index (Array.length a);
    Value.Vfloat a.(index)

let store t ~base ~index v =
  match cell_exn t base, v with
  | Ints a, Value.Vint n ->
    bounds base index (Array.length a);
    a.(index) <- n
  | Floats a, Value.Vfloat x ->
    bounds base index (Array.length a);
    a.(index) <- x
  | Ints _, (Value.Vfloat _ | Value.Vbool _) ->
    raise (Fault ("type mismatch storing to int array " ^ base))
  | Floats _, (Value.Vint _ | Value.Vbool _) ->
    raise (Fault ("type mismatch storing to float array " ^ base))

let size t base =
  match cell_exn t base with
  | Ints a -> Array.length a
  | Floats a -> Array.length a

let to_float_array t base =
  match cell_exn t base with
  | Floats a -> Array.copy a
  | Ints a -> Array.map float_of_int a

let to_int_array t base =
  match cell_exn t base with
  | Ints a -> Array.copy a
  | Floats a -> Array.map int_of_float a
