(** Deterministic IR interpreter with built-in profiling.

    Executes [main] of a program, recording block, edge and call counts
    plus host cycles (per {!Cpu_model}) into a {!Profile.t}. This replaces
    the paper's native instrumented execution; being deterministic, it
    makes the entire evaluation reproducible. *)

exception Runtime_error of string
exception Out_of_fuel

type result = {
  return_value : Value.t option;
  memory : Memory.t;
  profile : Profile.t;
  cache_stats : Cache.stats option;
      (** present when [cache_config] was given *)
}

(** [run ?fuel p] interprets [p] from [main]. [fuel] bounds the number of
    dynamic instructions (default 2e9). [cache_config] additionally
    drives a {!Cache} simulator with the access trace.
    @raise Runtime_error on dynamic errors (division by zero, bad memory
    access, unknown callee, uninitialized register).
    @raise Out_of_fuel when the budget is exhausted. *)
val run :
  ?fuel:int -> ?cache_config:Cache.config -> Cayman_ir.Program.t -> result
