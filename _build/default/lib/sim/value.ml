type t =
  | Vint of int
  | Vfloat of float
  | Vbool of bool

exception Type_error of string

let to_int = function
  | Vint n -> n
  | Vfloat _ -> raise (Type_error "expected int, got float")
  | Vbool _ -> raise (Type_error "expected int, got bool")

let to_float = function
  | Vfloat x -> x
  | Vint _ -> raise (Type_error "expected float, got int")
  | Vbool _ -> raise (Type_error "expected float, got bool")

let to_bool = function
  | Vbool b -> b
  | Vint _ -> raise (Type_error "expected bool, got int")
  | Vfloat _ -> raise (Type_error "expected bool, got float")

let zero_of (ty : Cayman_ir.Types.t) =
  match ty with
  | Cayman_ir.Types.I32 -> Vint 0
  | Cayman_ir.Types.F32 -> Vfloat 0.0
  | Cayman_ir.Types.Bool -> Vbool false

let ty_of = function
  | Vint _ -> Cayman_ir.Types.I32
  | Vfloat _ -> Cayman_ir.Types.F32
  | Vbool _ -> Cayman_ir.Types.Bool

let equal a b =
  match a, b with
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> Float.equal x y
  | Vbool x, Vbool y -> x = y
  | (Vint _ | Vfloat _ | Vbool _), _ -> false

let pp fmt = function
  | Vint n -> Format.pp_print_int fmt n
  | Vfloat x -> Format.fprintf fmt "%g" x
  | Vbool b -> Format.pp_print_bool fmt b
