lib/sim/profile.mli: Cayman_analysis Cayman_ir
