lib/sim/cpu_model.ml: Cayman_ir List
