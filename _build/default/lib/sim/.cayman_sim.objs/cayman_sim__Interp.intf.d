lib/sim/interp.mli: Cache Cayman_ir Memory Profile Value
