lib/sim/interp.ml: Array Cache Cayman_ir Cpu_model Hashtbl List Memory Option Printf Profile Value
