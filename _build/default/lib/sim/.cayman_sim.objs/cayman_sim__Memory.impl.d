lib/sim/memory.ml: Array Cayman_ir Hashtbl List Printf Value
