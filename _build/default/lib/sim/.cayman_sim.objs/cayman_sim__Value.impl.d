lib/sim/value.ml: Cayman_ir Float Format
