lib/sim/profile.ml: Cayman_analysis Cayman_ir Cpu_model Hashtbl List
