lib/sim/cpu_model.mli: Cayman_ir
