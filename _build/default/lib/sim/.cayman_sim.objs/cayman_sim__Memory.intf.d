lib/sim/memory.mli: Cayman_ir Value
