lib/sim/cache.ml: Array Cayman_ir Hashtbl List
