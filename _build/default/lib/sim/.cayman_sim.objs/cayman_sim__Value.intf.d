lib/sim/value.mli: Cayman_ir Format
