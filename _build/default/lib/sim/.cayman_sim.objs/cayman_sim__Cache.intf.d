lib/sim/cache.mli: Cayman_ir
