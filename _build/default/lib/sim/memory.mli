(** Program memory: one flat, element-granular array per global. *)

exception Fault of string

type t

val create : Cayman_ir.Program.t -> t

(** @raise Fault on unknown array or out-of-bounds access. *)
val load : t -> base:string -> index:int -> Value.t

val store : t -> base:string -> index:int -> Value.t -> unit
val size : t -> string -> int

(** Snapshot of an array's contents (for checking example results). *)
val to_float_array : t -> string -> float array

val to_int_array : t -> string -> int array
