(** Dynamic values of the interpreter. *)

type t =
  | Vint of int
  | Vfloat of float
  | Vbool of bool

exception Type_error of string

(** @raise Type_error on kind mismatch. *)
val to_int : t -> int

val to_float : t -> float
val to_bool : t -> bool
val zero_of : Cayman_ir.Types.t -> t
val ty_of : t -> Cayman_ir.Types.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
