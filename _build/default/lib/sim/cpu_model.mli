(** Cycle cost model of the host CPU (in-order scalar core at 1 GHz).

    Used both to attribute profiled durations to program regions and as
    the baseline the accelerators are compared against in Eq. (1). *)

val cpu_freq_hz : float
val call_overhead : int
val instr_cycles : Cayman_ir.Instr.t -> int
val term_cycles : Cayman_ir.Instr.term -> int

(** Static cost of one execution of the block (instructions plus
    terminator). *)
val block_cycles : Cayman_ir.Block.t -> int

val seconds_of_cycles : int -> float
