module Ir = Cayman_ir
module String_set = Set.Make (String)

type t = {
  live_in : (string, String_set.t) Hashtbl.t;
  live_out : (string, String_set.t) Hashtbl.t;
}

(* Per-block gen (upward-exposed uses) and kill (defs). *)
let gen_kill (b : Ir.Block.t) =
  let gen = ref String_set.empty in
  let kill = ref String_set.empty in
  let use (r : Ir.Instr.reg) =
    if not (String_set.mem r.Ir.Instr.id !kill) then
      gen := String_set.add r.Ir.Instr.id !gen
  in
  List.iter
    (fun i ->
      List.iter use (Ir.Instr.uses i);
      match Ir.Instr.def i with
      | Some r -> kill := String_set.add r.Ir.Instr.id !kill
      | None -> ())
    b.Ir.Block.instrs;
  List.iter use (Ir.Instr.term_uses b.Ir.Block.term);
  !gen, !kill

let compute (f : Ir.Func.t) =
  let live_in = Hashtbl.create 16 in
  let live_out = Hashtbl.create 16 in
  let gk = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.Block.t) ->
      Hashtbl.replace gk b.Ir.Block.label (gen_kill b);
      Hashtbl.replace live_in b.Ir.Block.label String_set.empty;
      Hashtbl.replace live_out b.Ir.Block.label String_set.empty)
    f.Ir.Func.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* Backward iteration converges faster on reversed block order. *)
    List.iter
      (fun (b : Ir.Block.t) ->
        let label = b.Ir.Block.label in
        let out =
          List.fold_left
            (fun acc s ->
              String_set.union acc
                (try Hashtbl.find live_in s with Not_found -> String_set.empty))
            String_set.empty (Ir.Block.succs b)
        in
        let gen, kill = Hashtbl.find gk label in
        let inn = String_set.union gen (String_set.diff out kill) in
        if not (String_set.equal out (Hashtbl.find live_out label)) then begin
          Hashtbl.replace live_out label out;
          changed := true
        end;
        if not (String_set.equal inn (Hashtbl.find live_in label)) then begin
          Hashtbl.replace live_in label inn;
          changed := true
        end)
      (List.rev f.Ir.Func.blocks)
  done;
  { live_in; live_out }

let live_in t label =
  try Hashtbl.find t.live_in label with Not_found -> String_set.empty

let live_out t label =
  try Hashtbl.find t.live_out label with Not_found -> String_set.empty
