(** Dominator and postdominator trees (iterative Cooper-Harvey-Kennedy). *)

type t = {
  entry : string;
  idom : (string, string) Hashtbl.t;  (** [idom entry = entry] *)
  depth : (string, int) Hashtbl.t;
  rpo : string list;  (** reverse postorder from the entry *)
}

val dominators : Cayman_ir.Func.t -> t

(** Label of the virtual exit node used by {!postdominators}. *)
val virtual_exit : string

(** Postdominators over the reversed CFG with a virtual exit collecting all
    [Return] terminators. Blocks that cannot reach a return are absent. *)
val postdominators : Cayman_ir.Func.t -> t

(** Whether a node was reachable from the tree's entry. *)
val reachable : t -> string -> bool

(** Reflexive dominance: [dominates t a b] iff [a] dominates [b]. Returns
    [false] if either node is unreachable. *)
val dominates : t -> string -> string -> bool

(** Immediate dominator; [None] for the entry or unreachable nodes. *)
val idom : t -> string -> string option

(** Generic driver, exposed for tests. *)
val compute :
  nodes:string list -> entry:string -> succs:(string -> string list) -> t
