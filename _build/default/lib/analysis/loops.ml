module Ir = Cayman_ir
module String_set = Set.Make (String)

type loop = {
  header : string;
  latches : string list;
  blocks : String_set.t;
  exits : (string * string) list;
  preheader : string option;
  parent : string option;
}

type t = loop list

(* Natural loop of back edge [latch -> header]: header plus every block
   that reaches [latch] without passing through [header]. *)
let natural_loop f ~header ~latch =
  let preds = Ir.Func.preds f in
  let body = ref (String_set.singleton header) in
  let rec pull n =
    if not (String_set.mem n !body) then begin
      body := String_set.add n !body;
      List.iter pull (try Hashtbl.find preds n with Not_found -> [])
    end
  in
  pull latch;
  !body

let find (f : Ir.Func.t) (dom : Dominance.t) : t =
  let preds = Ir.Func.preds f in
  (* Collect back edges grouped by header. *)
  let back : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (b : Ir.Block.t) ->
      List.iter
        (fun s ->
          if Dominance.dominates dom s b.Ir.Block.label then
            Hashtbl.replace back s
              (b.Ir.Block.label :: (try Hashtbl.find back s with Not_found -> [])))
        (Ir.Block.succs b))
    f.Ir.Func.blocks;
  let loops_no_parent =
    Hashtbl.fold
      (fun header latches acc ->
        let blocks =
          List.fold_left
            (fun acc latch ->
              String_set.union acc (natural_loop f ~header ~latch))
            String_set.empty latches
        in
        let exits =
          String_set.fold
            (fun label acc ->
              let b = Ir.Func.block_exn f label in
              List.fold_left
                (fun acc s ->
                  if String_set.mem s blocks then acc else (label, s) :: acc)
                acc (Ir.Block.succs b))
            blocks []
        in
        let outside_preds =
          List.filter
            (fun p -> not (String_set.mem p blocks))
            (try Hashtbl.find preds header with Not_found -> [])
        in
        let preheader =
          match outside_preds with
          | [ p ] -> Some p
          | [] | _ :: _ :: _ -> None
        in
        { header; latches; blocks; exits; preheader; parent = None } :: acc)
      back []
  in
  (* Parent links: the innermost distinct loop whose block set strictly
     contains this loop's. *)
  let with_parents =
    List.map
      (fun l ->
        let candidates =
          List.filter
            (fun l' ->
              not (String.equal l'.header l.header)
              && String_set.subset l.blocks l'.blocks)
            loops_no_parent
        in
        let parent =
          List.fold_left
            (fun best l' ->
              match best with
              | None -> Some l'
              | Some b ->
                if String_set.cardinal l'.blocks < String_set.cardinal b.blocks
                then Some l'
                else best)
            None candidates
        in
        { l with parent = Option.map (fun p -> p.header) parent })
      loops_no_parent
  in
  (* Stable order: by position of the header in RPO (outer loops first). *)
  let rpo_index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace rpo_index n i) dom.Dominance.rpo;
  List.sort
    (fun a b ->
      compare
        (try Hashtbl.find rpo_index a.header with Not_found -> max_int)
        (try Hashtbl.find rpo_index b.header with Not_found -> max_int))
    with_parents

let loop_of t header = List.find_opt (fun l -> String.equal l.header header) t

(* Innermost-first list of loops containing [label]. *)
let enclosing t label =
  t
  |> List.filter (fun l -> String_set.mem label l.blocks)
  |> List.sort (fun a b ->
    compare (String_set.cardinal a.blocks) (String_set.cardinal b.blocks))

let is_innermost t l =
  not
    (List.exists
       (fun l' ->
         (not (String.equal l'.header l.header))
         && String_set.subset l'.blocks l.blocks)
       t)

let depth t l =
  let rec up acc = function
    | None -> acc
    | Some h ->
      (match loop_of t h with
       | Some p -> up (acc + 1) p.parent
       | None -> acc + 1)
  in
  up 1 l.parent
