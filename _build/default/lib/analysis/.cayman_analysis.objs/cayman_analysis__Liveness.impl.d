lib/analysis/liveness.ml: Cayman_ir Hashtbl List Set String
