lib/analysis/region.mli: Cayman_ir Format Set String
