lib/analysis/loops.mli: Cayman_ir Dominance Set String
