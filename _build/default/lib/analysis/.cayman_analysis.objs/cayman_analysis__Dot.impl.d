lib/analysis/dot.ml: Array Buffer Cayman_ir Format Hashtbl List Printf Region String Wpst
