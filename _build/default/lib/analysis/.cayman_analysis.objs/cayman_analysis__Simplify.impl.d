lib/analysis/simplify.ml: Cayman_ir Hashtbl List String
