lib/analysis/ifconv.mli: Cayman_ir
