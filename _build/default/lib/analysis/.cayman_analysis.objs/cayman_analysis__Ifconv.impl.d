lib/analysis/ifconv.ml: Cayman_ir Hashtbl List Map Printf Set String
