lib/analysis/scev.mli: Cayman_ir Format Loops
