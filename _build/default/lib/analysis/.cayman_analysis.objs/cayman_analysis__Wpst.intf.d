lib/analysis/wpst.mli: Cayman_ir Format Region
