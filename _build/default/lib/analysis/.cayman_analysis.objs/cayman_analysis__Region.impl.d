lib/analysis/region.ml: Cayman_ir Dominance Format Hashtbl List Printf Set String
