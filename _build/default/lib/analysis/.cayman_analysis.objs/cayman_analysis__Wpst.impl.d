lib/analysis/wpst.ml: Cayman_ir Format Hashtbl List Region String
