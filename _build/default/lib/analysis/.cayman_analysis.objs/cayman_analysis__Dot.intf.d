lib/analysis/dot.mli: Cayman_ir Wpst
