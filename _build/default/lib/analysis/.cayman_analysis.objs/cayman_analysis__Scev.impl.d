lib/analysis/scev.ml: Cayman_ir Format Hashtbl List Loops Printf Set String
