lib/analysis/simplify.mli: Cayman_ir
