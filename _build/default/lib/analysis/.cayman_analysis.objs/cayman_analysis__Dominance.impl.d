lib/analysis/dominance.ml: Cayman_ir Hashtbl List String
