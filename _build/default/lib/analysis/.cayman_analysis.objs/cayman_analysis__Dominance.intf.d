lib/analysis/dominance.mli: Cayman_ir Hashtbl
