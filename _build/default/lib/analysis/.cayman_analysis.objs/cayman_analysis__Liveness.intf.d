lib/analysis/liveness.mli: Cayman_ir Hashtbl Set String
