lib/analysis/loops.ml: Cayman_ir Dominance Hashtbl List Option Set String
