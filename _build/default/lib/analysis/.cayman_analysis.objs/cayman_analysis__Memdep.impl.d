lib/analysis/memdep.ml: Cayman_ir List Liveness Loops Scev Set String
