lib/analysis/memdep.mli: Cayman_ir Liveness Loops Scev
