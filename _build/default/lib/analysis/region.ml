module Ir = Cayman_ir
module String_set = Set.Make (String)

type kind =
  | Whole_function
  | Loop_region
  | Cond_region
  | Basic_block

type t = {
  id : int;
  kind : kind;
  entry : string;
  exit : string option;
  blocks : String_set.t;
  children : t list;
}

let kind_to_string = function
  | Whole_function -> "func"
  | Loop_region -> "loop"
  | Cond_region -> "cond"
  | Basic_block -> "bb"

let is_ctrl_flow r =
  match r.kind with
  | Loop_region | Cond_region -> true
  | Whole_function | Basic_block -> false

let name r =
  match r.kind with
  | Basic_block -> r.entry
  | Whole_function -> "func:" ^ r.entry
  | Loop_region | Cond_region ->
    Printf.sprintf "%s:%s" (kind_to_string r.kind) r.entry

(* A candidate region (entry block [a], exit block [b]): the blocks
   dominated by [a] and postdominated by [b], excluding [b]. It is SESE at
   block granularity iff outside edges enter only at [a] and inside edges
   leave only to [b]. *)
let candidate f dom pdom ~a ~b =
  let labels = Ir.Func.labels f in
  let inside =
    List.filter
      (fun x ->
        (not (String.equal x b))
        && Dominance.dominates dom a x
        && Dominance.dominates pdom b x)
      labels
  in
  let set = String_set.of_list inside in
  if String_set.is_empty set then None
  else begin
    let preds = Ir.Func.preds f in
    let entry_ok =
      String_set.for_all
        (fun x ->
          List.for_all
            (fun p -> String_set.mem p set || String.equal x a)
            (try Hashtbl.find preds x with Not_found -> []))
        set
    in
    let exit_ok =
      String_set.for_all
        (fun x ->
          List.for_all
            (fun s -> String_set.mem s set || String.equal s b)
            (Ir.Block.succs (Ir.Func.block_exn f x)))
        set
    in
    if entry_ok && exit_ok then Some set else None
  end

let has_back_edge f set entry =
  String_set.exists
    (fun x ->
      List.exists (String.equal entry) (Ir.Block.succs (Ir.Func.block_exn f x)))
    set

(* Enumerate control-flow SESE regions: for each block [a], walk the
   postdominator chain upward from [a] while [a] still dominates the
   candidate exit. *)
let ctrl_regions f dom pdom =
  let acc = ref [] in
  List.iter
    (fun a ->
      if Dominance.reachable dom a && Dominance.reachable pdom a then begin
        let rec walk b =
          if
            (not (String.equal b Dominance.virtual_exit))
            && Dominance.reachable dom b
            && Dominance.dominates dom a b
          then begin
            (match candidate f dom pdom ~a ~b with
             | Some set ->
               let trivial =
                 String_set.cardinal set = 1
                 &&
                 match Ir.Block.succs (Ir.Func.block_exn f a) with
                 | [ _ ] -> true
                 | [] | _ :: _ :: _ -> false
               in
               if not trivial then begin
                 let kind =
                   if has_back_edge f set a then Loop_region else Cond_region
                 in
                 acc := (a, b, set, kind) :: !acc
               end
             | None -> ());
            match Dominance.idom pdom b with
            | Some b' -> walk b'
            | None -> ()
          end
        in
        match Dominance.idom pdom a with
        | Some b -> walk b
        | None -> ()
      end)
    (Ir.Func.labels f);
  !acc

(* Tree node under construction. *)
type proto = {
  p_kind : kind;
  p_entry : string;
  p_exit : string option;
  p_blocks : String_set.t;
  mutable p_children : proto list;
}

let rec insert parent node =
  (* Find a child that contains the node; recurse there. *)
  let container =
    List.find_opt
      (fun c -> String_set.subset node.p_blocks c.p_blocks)
      parent.p_children
  in
  match container with
  | Some c -> insert c node
  | None ->
    (* SESE regions found along different postdominator chains may overlap
       without nesting (a "prefix + loop" region vs a "loop + epilogue"
       region). The tree must partition blocks so the selection DP never
       double-counts; drop any region that partially overlaps a sibling. *)
    let partial_overlap =
      List.exists
        (fun c ->
          (not (String_set.subset c.p_blocks node.p_blocks))
          && not (String_set.is_empty (String_set.inter c.p_blocks node.p_blocks)))
        parent.p_children
    in
    if not partial_overlap then begin
      (* Adopt any current children now contained in the node. *)
      let inside, outside =
        List.partition
          (fun c -> String_set.subset c.p_blocks node.p_blocks)
          parent.p_children
      in
      node.p_children <- node.p_children @ inside;
      parent.p_children <- node :: outside
    end

let pst (f : Ir.Func.t) : t =
  let dom = Dominance.dominators f in
  let pdom = Dominance.postdominators f in
  let reachable_labels = List.filter (Dominance.reachable dom) (Ir.Func.labels f) in
  let root =
    { p_kind = Whole_function;
      p_entry = (Ir.Func.entry f).Ir.Block.label;
      p_exit = None;
      p_blocks = String_set.of_list reachable_labels;
      p_children = [] }
  in
  let regions = ctrl_regions f dom pdom in
  (* Insert larger regions first so containment nesting is direct. *)
  let sorted =
    List.sort
      (fun (_, _, s1, _) (_, _, s2, _) ->
        compare (String_set.cardinal s2) (String_set.cardinal s1))
      regions
  in
  List.iter
    (fun (a, b, set, kind) ->
      if not (String_set.equal set root.p_blocks) then
        insert root
          { p_kind = kind; p_entry = a; p_exit = Some b; p_blocks = set;
            p_children = [] })
    sorted;
  (* Basic-block leaves under the innermost containing region. *)
  List.iter
    (fun label ->
      insert root
        { p_kind = Basic_block; p_entry = label; p_exit = None;
          p_blocks = String_set.singleton label; p_children = [] })
    reachable_labels;
  (* Freeze, ordering children by RPO position of their entry and numbering
     vertices in preorder. *)
  let rpo_index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace rpo_index n i) dom.Dominance.rpo;
  let pos label = try Hashtbl.find rpo_index label with Not_found -> max_int in
  let next_id = ref 0 in
  let rec freeze p =
    let id = !next_id in
    incr next_id;
    let children =
      p.p_children
      |> List.sort (fun c1 c2 ->
        compare
          (pos c1.p_entry, String_set.cardinal c2.p_blocks)
          (pos c2.p_entry, String_set.cardinal c1.p_blocks))
      |> List.map freeze
    in
    { id; kind = p.p_kind; entry = p.p_entry; exit = p.p_exit;
      blocks = p.p_blocks; children }
  in
  freeze root

let rec iter g r =
  g r;
  List.iter (iter g) r.children

let rec fold g acc r =
  let acc = g acc r in
  List.fold_left (fold g) acc r.children

let find_by_id root id =
  let found = ref None in
  iter (fun r -> if r.id = id then found := Some r) root;
  !found

let rec pp fmt r =
  Format.fprintf fmt "@[<v 2>[%d] %s (%d blocks)" r.id (name r)
    (String_set.cardinal r.blocks);
  List.iter (fun c -> Format.fprintf fmt "@,%a" pp c) r.children;
  Format.fprintf fmt "@]"
