(** Graphviz emitters for inspecting the analyses: control-flow graphs,
    the wPST, and per-block data-flow graphs. *)

val cfg : Cayman_ir.Func.t -> string
val wpst : Wpst.t -> string
val dfg : Cayman_ir.Block.t -> string
