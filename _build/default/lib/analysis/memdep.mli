(** Memory dependence analysis: loop-carried dependencies and scalar
    recurrences.

    Stands in for LLVM's MemoryDependenceAnalysis, specialized to the
    array-symbol memory model: distinct globals never alias, and same-base
    accesses are compared through their affine address forms. *)

type access = {
  a_block : string;
  a_pos : int;
  a_base : string;
  a_is_store : bool;
}

type carried_dep = {
  src : access;
  dst : access;
  distance : int option;  (** [None]: unknown distance, treat as 1 *)
}

(** All loop-carried memory dependencies of the loop (pairs of same-base
    accesses, at least one a store, aliasing across iterations). *)
val loop_carried :
  Cayman_ir.Func.t -> Scev.t -> Loops.loop -> carried_dep list

(** Registers carried around the back edge (accumulators), excluding
    canonical induction variables. *)
val recurrence_regs :
  Cayman_ir.Func.t -> Liveness.t -> Scev.t -> Loops.loop -> string list

type loop_info = {
  header : string;
  carried : carried_dep list;
  recurrences : string list;
}

val analyze_loop :
  Cayman_ir.Func.t -> Liveness.t -> Scev.t -> Loops.loop -> loop_info

(** Whether the loop has any loop-carried dependency (memory or scalar);
    such loops are not unrolled, per the paper's exploration strategy. *)
val has_carried_dep : loop_info -> bool
