(** Scalar evolution: affine address analysis for memory accesses.

    Stands in for LLVM's ScalarEvolution plus the paper's custom stream-
    pattern pass. An access whose index is an affine function of enclosing
    loop induction variables has a statically computable address sequence
    — the paper's *stream* pattern — and a statically analyzable footprint. *)

type affine = {
  const : int;
  ivs : (string * int) list;
      (** coefficient per loop (keyed by header label); IVs count
          iterations from 0 *)
  syms : (string * int) list;  (** loop-invariant symbolic terms *)
}

type form =
  | Affine of affine
  | Unknown

(** Access pattern with respect to the innermost enclosing loop. *)
type pattern =
  | Invariant
  | Stream of int  (** element stride per iteration *)
  | Irregular

type iv_info = { iv_loop : string; step : int; start : form }

type t

val create : Cayman_ir.Func.t -> Loops.t -> t

val affine_equal : affine -> affine -> bool
val coeff_of : affine -> string -> int

(** Affine form of the address of the memory instruction at [(block, pos)]
    (instruction index within the block). *)
val access_form : t -> block:string -> pos:int -> form

val classify : t -> block:string -> pos:int -> pattern

(** [footprint t ~block ~pos ~trips] is the number of distinct elements the
    access touches while the loops in [trips] (pairs of header label and
    trip count) run; [None] when the address is not statically
    analyzable. *)
val footprint :
  t -> block:string -> pos:int -> trips:(string * int) list -> int option

(** Whether the register is a canonical induction variable of some loop. *)
val is_iv : t -> string -> bool

val iv_of : t -> string -> iv_info option

val pp_affine : Format.formatter -> affine -> unit
val pp_form : Format.formatter -> form -> unit
val pattern_to_string : pattern -> string
