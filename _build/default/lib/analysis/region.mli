(** Single-entry-single-exit regions and the program structure tree (PST).

    Mirrors LLVM's RegionInfo / the PST of Johnson, Pearson and Pingali
    that the paper builds on: control-flow regions are SESE at block
    granularity (all outside edges enter at the entry block, all leaving
    edges target the exit block), so an offloaded region can synchronize
    with the host at exactly two points. Every basic block additionally
    forms a [Basic_block] leaf region, matching the paper's *bb* region
    vertices. *)

module String_set :
  Set.S with type elt = string and type t = Set.Make(String).t

type kind =
  | Whole_function
  | Loop_region
  | Cond_region
  | Basic_block

type t = {
  id : int;  (** preorder id, unique within one PST *)
  kind : kind;
  entry : string;  (** entry block label *)
  exit : string option;
      (** block where control resumes after the region; [None] for the
          function root and basic blocks *)
  blocks : String_set.t;
  children : t list;
}

val kind_to_string : kind -> string

(** [Loop_region] or [Cond_region]. *)
val is_ctrl_flow : t -> bool

(** Human-readable name derived from the entry label. *)
val name : t -> string

(** Program structure tree of a function; the root is the whole function. *)
val pst : Cayman_ir.Func.t -> t

val iter : (t -> unit) -> t -> unit
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
val find_by_id : t -> int -> t option
val pp : Format.formatter -> t -> unit
