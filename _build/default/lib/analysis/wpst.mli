(** The whole-application program structure tree (wPST).

    Extends the per-function PST with a root vertex representing the
    entire application whose children are the functions reachable from
    [main]. Region vertices are addressed by [(function, region id)]
    pairs. *)

type vref = { vfunc : string; vid : int }

type func_tree = { fname : string; root : Region.t }

type t = { program : Cayman_ir.Program.t; funcs : func_tree list }

(** Functions reachable from main through direct calls, main first. *)
val reachable_funcs : Cayman_ir.Program.t -> string list

val build : Cayman_ir.Program.t -> t
val func_tree : t -> string -> func_tree option
val region : t -> vref -> Region.t option

(** Total number of region vertices across all functions. *)
val region_count : t -> int

val iter : (string -> Region.t -> unit) -> t -> unit
val pp : Format.formatter -> t -> unit
