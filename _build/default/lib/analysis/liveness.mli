(** Classic backward liveness analysis on registers. *)

module String_set :
  Set.S with type elt = string and type t = Set.Make(String).t

type t = {
  live_in : (string, String_set.t) Hashtbl.t;
  live_out : (string, String_set.t) Hashtbl.t;
}

val compute : Cayman_ir.Func.t -> t
val live_in : t -> string -> String_set.t
val live_out : t -> string -> String_set.t
