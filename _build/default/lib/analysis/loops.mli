(** Natural loop detection from back edges. *)

module String_set :
  Set.S with type elt = string and type t = Set.Make(String).t

type loop = {
  header : string;
  latches : string list;  (** sources of back edges to [header] *)
  blocks : String_set.t;  (** loop body including the header *)
  exits : (string * string) list;  (** [(from, to)] edges leaving the loop *)
  preheader : string option;  (** the unique outside predecessor, if unique *)
  parent : string option;  (** header of the innermost enclosing loop *)
}

type t = loop list

val find : Cayman_ir.Func.t -> Dominance.t -> t
val loop_of : t -> string -> loop option

(** Loops containing the given block, innermost first. *)
val enclosing : t -> string -> loop list

val is_innermost : t -> loop -> bool

(** Nesting depth, 1 for outermost loops. *)
val depth : t -> loop -> int
