module Ir = Cayman_ir

(* Graphviz dot emitters for the CFG, the wPST, and block DFGs — handy
   for inspecting what the analyses computed (CLI command `graph`). *)

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let cfg (f : Ir.Func.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "digraph cfg_%s {\n  node [shape=box, fontname=\"monospace\"];\n"
       (escape f.Ir.Func.name));
  List.iter
    (fun (b : Ir.Block.t) ->
      let body =
        String.concat "\\l"
          (List.map
             (fun i -> escape (Format.asprintf "%a" Ir.Instr.pp i))
             b.Ir.Block.instrs)
      in
      let term = escape (Format.asprintf "%a" Ir.Instr.pp_term b.Ir.Block.term) in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [label=\"%s:\\l%s%s%s\\l\"];\n"
           b.Ir.Block.label b.Ir.Block.label body
           (if b.Ir.Block.instrs = [] then "" else "\\l")
           term);
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" -> \"%s\";\n" b.Ir.Block.label s))
        (Ir.Block.succs b))
    f.Ir.Func.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let region_color (r : Region.t) =
  match r.Region.kind with
  | Region.Whole_function -> "gray80"
  | Region.Loop_region -> "lightblue"
  | Region.Cond_region -> "khaki"
  | Region.Basic_block -> "white"

let wpst (t : Wpst.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "digraph wpst {\n  node [shape=box, style=filled, fontname=\"monospace\"];\n\
    \  \"root\" [label=\"application\", fillcolor=gray60];\n";
  List.iter
    (fun (ft : Wpst.func_tree) ->
      let nid (r : Region.t) =
        Printf.sprintf "%s_%d" ft.Wpst.fname r.Region.id
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"root\" -> \"%s\";\n" (nid ft.Wpst.root));
      Region.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" [label=\"%s\\n%d blocks\", fillcolor=%s];\n"
               (nid r)
               (escape (Region.name r))
               (Region.String_set.cardinal r.Region.blocks)
               (region_color r));
          List.iter
            (fun c ->
              Buffer.add_string buf
                (Printf.sprintf "  \"%s\" -> \"%s\";\n" (nid r) (nid c)))
            r.Region.children)
        ft.Wpst.root)
    t.Wpst.funcs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let dfg (b : Ir.Block.t) =
  let instrs = Array.of_list b.Ir.Block.instrs in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "digraph dfg_%s {\n  node [shape=ellipse, fontname=\"monospace\"];\n"
       (escape b.Ir.Block.label));
  (* local def-use edges, same construction as Hls.Dfg *)
  let last_def : (string, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i instr ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" i
           (escape (Format.asprintf "%a" Ir.Instr.pp instr)));
      List.iter
        (fun (r : Ir.Instr.reg) ->
          match Hashtbl.find_opt last_def r.Ir.Instr.id with
          | Some d ->
            Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" d i)
          | None ->
            let input = "in_" ^ r.Ir.Instr.id in
            Buffer.add_string buf
              (Printf.sprintf
                 "  \"%s\" [label=\"%%%s\", shape=plaintext];\n  \"%s\" -> n%d;\n"
                 input r.Ir.Instr.id input i))
        (Ir.Instr.uses instr);
      match Ir.Instr.def instr with
      | Some r -> Hashtbl.replace last_def r.Ir.Instr.id i
      | None -> ())
    instrs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
