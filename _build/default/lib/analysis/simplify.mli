(** CFG simplification: fuse straight-line block chains (a block ending in
    an unconditional jump absorbs a successor whose only predecessor it
    is). Run after {!Ifconv} to restore canonical single-block loop
    bodies. *)

val merge_chains_func : Cayman_ir.Func.t -> Cayman_ir.Func.t
val merge_chains : Cayman_ir.Program.t -> Cayman_ir.Program.t
