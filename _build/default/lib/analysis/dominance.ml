module Ir = Cayman_ir

type t = {
  entry : string;
  idom : (string, string) Hashtbl.t;
  depth : (string, int) Hashtbl.t;
  rpo : string list;
}

(* Generic Cooper-Harvey-Kennedy iterative dominator computation over an
   abstract graph given by [succs]. Nodes unreachable from [entry] are
   absent from the result. *)
let compute ~nodes ~entry ~succs =
  let _ = nodes in
  (* Depth-first traversal to obtain reverse postorder. *)
  let visited = Hashtbl.create 64 in
  let postorder = ref [] in
  let rec dfs n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.replace visited n ();
      List.iter dfs (succs n);
      postorder := n :: !postorder
    end
  in
  dfs entry;
  let rpo = !postorder in
  let rpo_index = Hashtbl.create 64 in
  List.iteri (fun i n -> Hashtbl.replace rpo_index n i) rpo;
  let preds = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace preds n []) rpo;
  List.iter
    (fun n ->
      List.iter
        (fun s ->
          if Hashtbl.mem rpo_index s then
            Hashtbl.replace preds s (n :: (try Hashtbl.find preds s with Not_found -> [])))
        (succs n))
    rpo;
  let idom = Hashtbl.create 64 in
  Hashtbl.replace idom entry entry;
  let intersect a b =
    let rec walk a b =
      if String.equal a b then a
      else begin
        let ia = Hashtbl.find rpo_index a and ib = Hashtbl.find rpo_index b in
        if ia > ib then walk (Hashtbl.find idom a) b
        else walk a (Hashtbl.find idom b)
      end
    in
    walk a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        if not (String.equal n entry) then begin
          let ps =
            List.filter (fun p -> Hashtbl.mem idom p)
              (try Hashtbl.find preds n with Not_found -> [])
          in
          match ps with
          | [] -> ()
          | p0 :: rest ->
            let new_idom = List.fold_left intersect p0 rest in
            (match Hashtbl.find_opt idom n with
             | Some old when String.equal old new_idom -> ()
             | Some _ | None ->
               Hashtbl.replace idom n new_idom;
               changed := true)
        end)
      rpo
  done;
  let depth = Hashtbl.create 64 in
  Hashtbl.replace depth entry 0;
  let rec depth_of n =
    match Hashtbl.find_opt depth n with
    | Some d -> d
    | None ->
      let d = 1 + depth_of (Hashtbl.find idom n) in
      Hashtbl.replace depth n d;
      d
  in
  List.iter (fun n -> ignore (depth_of n : int)) rpo;
  { entry; idom; depth; rpo }

let dominators (f : Ir.Func.t) =
  let entry = (Ir.Func.entry f).Ir.Block.label in
  let succs label = Ir.Block.succs (Ir.Func.block_exn f label) in
  compute ~nodes:(Ir.Func.labels f) ~entry ~succs

let virtual_exit = "<exit>"

let postdominators (f : Ir.Func.t) =
  (* Reverse graph with a virtual exit fed by every returning block. *)
  let preds = Ir.Func.preds f in
  let returning =
    List.filter_map
      (fun (b : Ir.Block.t) ->
        match b.Ir.Block.term with
        | Ir.Instr.Return _ -> Some b.Ir.Block.label
        | Ir.Instr.Jump _ | Ir.Instr.Branch _ -> None)
      f.Ir.Func.blocks
  in
  let succs label =
    if String.equal label virtual_exit then returning
    else try Hashtbl.find preds label with Not_found -> []
  in
  compute ~nodes:(virtual_exit :: Ir.Func.labels f) ~entry:virtual_exit ~succs

let reachable t label = Hashtbl.mem t.depth label

(* Reflexive dominance query by walking the idom chain from [b] up to the
   depth of [a]. *)
let dominates t a b =
  match Hashtbl.find_opt t.depth a, Hashtbl.find_opt t.depth b with
  | Some da, Some db ->
    if da > db then false
    else begin
      let rec up n d = if d = da then n else up (Hashtbl.find t.idom n) (d - 1) in
      String.equal (up b db) a
    end
  | None, _ | _, None -> false

let idom t label =
  match Hashtbl.find_opt t.idom label with
  | Some p when not (String.equal p label) -> Some p
  | Some _ | None -> None
