module Ir = Cayman_ir
module String_set = Set.Make (String)

type access = {
  a_block : string;
  a_pos : int;
  a_base : string;
  a_is_store : bool;
}

type carried_dep = {
  src : access;
  dst : access;
  distance : int option;  (** [None] means unknown: assume distance 1 *)
}

let accesses_in (f : Ir.Func.t) (blocks : Loops.String_set.t) =
  List.concat_map
    (fun (b : Ir.Block.t) ->
      if Loops.String_set.mem b.Ir.Block.label blocks then
        List.mapi (fun pos i -> pos, i) b.Ir.Block.instrs
        |> List.filter_map (fun (pos, i) ->
          match Ir.Instr.mem_ref_of i with
          | Some m ->
            Some
              { a_block = b.Ir.Block.label; a_pos = pos;
                a_base = m.Ir.Instr.base;
                a_is_store =
                  (match i with
                   | Ir.Instr.Store _ -> true
                   | Ir.Instr.Assign _ | Ir.Instr.Unary _ | Ir.Instr.Binary _
                   | Ir.Instr.Compare _ | Ir.Instr.Select _ | Ir.Instr.Load _
                   | Ir.Instr.Call _ -> false) }
          | None -> None)
      else [])
    f.Ir.Func.blocks

(* Cross-iteration dependence between two same-base accesses with respect
   to loop [header]. *)
let carried_between scev ~header x y =
  let fx = Scev.access_form scev ~block:x.a_block ~pos:x.a_pos in
  let fy = Scev.access_form scev ~block:y.a_block ~pos:y.a_pos in
  match fx, fy with
  | Scev.Unknown, _ | _, Scev.Unknown -> Some None
  | Scev.Affine a, Scev.Affine b ->
    let ca = Scev.coeff_of a header and cb = Scev.coeff_of b header in
    let strip form =
      List.filter (fun (h, _) -> not (String.equal h header)) form
    in
    let others_equal =
      strip a.Scev.ivs = strip b.Scev.ivs && a.Scev.syms = b.Scev.syms
    in
    if not others_equal then Some None
    else if ca <> cb then Some None
    else begin
      let d = a.Scev.const - b.Scev.const in
      if ca = 0 then
        if d = 0 then Some (Some 1) (* same invariant address each iteration *)
        else None (* distinct constant addresses: never alias *)
      else if d = 0 then None (* same address within one iteration only *)
      else if d mod ca = 0 then Some (Some (abs (d / ca)))
      else None
    end

(* Loop-carried memory dependencies of [loop]: pairs of same-base accesses,
   at least one being a store, that touch the same address in different
   iterations. *)
let loop_carried (f : Ir.Func.t) scev (loop : Loops.loop) =
  let accs = accesses_in f loop.Loops.blocks in
  let deps = ref [] in
  List.iteri
    (fun i x ->
      List.iteri
        (fun j y ->
          if j >= i && (x.a_is_store || y.a_is_store)
             && String.equal x.a_base y.a_base
          then
            match carried_between scev ~header:loop.Loops.header x y with
            | Some distance -> deps := { src = x; dst = y; distance } :: !deps
            | None -> ())
        accs)
    accs;
  List.rev !deps

(* Scalar recurrences: registers live around the back edge and redefined in
   the loop (e.g. accumulators). Canonical IVs are excluded; their trivial
   one-cycle increment never limits pipelining in our model. *)
let recurrence_regs (f : Ir.Func.t) (live : Liveness.t) scev (loop : Loops.loop) =
  let defs_in_loop =
    Loops.String_set.fold
      (fun label acc ->
        List.fold_left
          (fun acc (r : Ir.Instr.reg) -> String_set.add r.Ir.Instr.id acc)
          acc
          (Ir.Block.defs (Ir.Func.block_exn f label)))
      loop.Loops.blocks String_set.empty
  in
  let live_at_header = Liveness.live_in live loop.Loops.header in
  String_set.inter defs_in_loop live_at_header
  |> String_set.elements
  |> List.filter (fun rid -> not (Scev.is_iv scev rid))

type loop_info = {
  header : string;
  carried : carried_dep list;
  recurrences : string list;
}

let analyze_loop f live scev loop =
  { header = loop.Loops.header;
    carried = loop_carried f scev loop;
    recurrences = recurrence_regs f live scev loop }

(* Unrolling legality per the paper: only loops free of loop-carried
   dependencies (memory or scalar) are unrolled. *)
let has_carried_dep info = info.carried <> [] || info.recurrences <> []
