(* PolyBench kernels re-implemented in MiniC. Loop nests, dependence
   structure and access patterns follow the originals; problem sizes are
   scaled for the IR interpreter. Each program initializes its own data
   deterministically and returns a checksum-derived int so no computation
   is dead. *)

let three_mm =
  {|
const int N = 28;

float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N];
float E[N][N]; float F[N][N]; float G[N][N];

void init() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      A[i][j] = (float)((i * j + 1) % 7) / 7.0;
      B[i][j] = (float)((i * (j + 1)) % 9) / 9.0;
      C[i][j] = (float)((i * (j + 3) + 1) % 5) / 5.0;
      D[i][j] = (float)((i * (j + 2)) % 11) / 11.0;
    }
  }
}

void mm1() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      E[i][j] = 0.0;
      for (int k = 0; k < N; k++) { E[i][j] += A[i][k] * B[k][j]; }
    }
  }
}

void mm2() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      F[i][j] = 0.0;
      for (int k = 0; k < N; k++) { F[i][j] += C[i][k] * D[k][j]; }
    }
  }
}

void mm3() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      G[i][j] = 0.0;
      for (int k = 0; k < N; k++) { G[i][j] += E[i][k] * F[k][j]; }
    }
  }
}

int main() {
  init();
  for (int r = 0; r < 6; r++) { mm1(); mm2(); mm3(); }
  float s = 0.0;
  for (int i = 0; i < N; i++) { s += G[i][i]; }
  return (int)s;
}
|}

let atax =
  {|
const int N = 56;

float A[N][N]; float x[N]; float y[N]; float tmp[N];

void init() {
  for (int i = 0; i < N; i++) {
    x[i] = 1.0 + (float)i / (float)N;
    for (int j = 0; j < N; j++) {
      A[i][j] = (float)((i + j) % 13) / 13.0;
    }
  }
}

void kernel() {
  for (int i = 0; i < N; i++) { y[i] = 0.0; }
  for (int i = 0; i < N; i++) {
    tmp[i] = 0.0;
    for (int j = 0; j < N; j++) { tmp[i] += A[i][j] * x[j]; }
    for (int j = 0; j < N; j++) { y[j] = y[j] + A[i][j] * tmp[i]; }
  }
}

int main() {
  init();
  for (int r = 0; r < 40; r++) { kernel(); }
  float s = 0.0;
  for (int i = 0; i < N; i++) { s += y[i]; }
  return (int)s;
}
|}

let bicg =
  {|
const int N = 56;

float A[N][N]; float s[N]; float q[N]; float p[N]; float r[N];

void init() {
  for (int i = 0; i < N; i++) {
    p[i] = (float)(i % 11) / 11.0;
    r[i] = (float)(i % 7) / 7.0;
    for (int j = 0; j < N; j++) {
      A[i][j] = (float)((i * (j + 1)) % 17) / 17.0;
    }
  }
}

void kernel() {
  for (int i = 0; i < N; i++) { s[i] = 0.0; }
  for (int i = 0; i < N; i++) {
    q[i] = 0.0;
    for (int j = 0; j < N; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
}

int main() {
  init();
  for (int t = 0; t < 40; t++) { kernel(); }
  float acc = 0.0;
  for (int i = 0; i < N; i++) { acc += s[i] + q[i]; }
  return (int)acc;
}
|}

let doitgen =
  {|
const int NR = 14;
const int NQ = 14;
const int NP = 14;

float A[NR][NQ][NP]; float C4[NP][NP]; float sum[NP];

void init() {
  for (int r = 0; r < NR; r++) {
    for (int q = 0; q < NQ; q++) {
      for (int p = 0; p < NP; p++) {
        A[r][q][p] = (float)((r * q + p) % 9) / 9.0;
      }
    }
  }
  for (int i = 0; i < NP; i++) {
    for (int j = 0; j < NP; j++) {
      C4[i][j] = (float)((i * j) % 7) / 7.0;
    }
  }
}

void kernel() {
  for (int r = 0; r < NR; r++) {
    for (int q = 0; q < NQ; q++) {
      for (int p = 0; p < NP; p++) {
        sum[p] = 0.0;
        for (int ss = 0; ss < NP; ss++) { sum[p] += A[r][q][ss] * C4[ss][p]; }
      }
      for (int p = 0; p < NP; p++) { A[r][q][p] = sum[p]; }
    }
  }
}

int main() {
  init();
  for (int t = 0; t < 12; t++) { kernel(); }
  float s = 0.0;
  for (int p = 0; p < NP; p++) { s += A[1][2][p]; }
  return (int)(s * 100.0);
}
|}

let mvt =
  {|
const int N = 56;

float A[N][N]; float x1[N]; float x2[N]; float y1[N]; float y2[N];

void init() {
  for (int i = 0; i < N; i++) {
    x1[i] = (float)(i % 5) / 5.0;
    x2[i] = (float)(i % 3) / 3.0;
    y1[i] = (float)(i % 9) / 9.0;
    y2[i] = (float)(i % 13) / 13.0;
    for (int j = 0; j < N; j++) {
      A[i][j] = (float)((i * j + 2) % 19) / 19.0;
    }
  }
}

void kernel() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) { x1[i] = x1[i] + A[i][j] * y1[j]; }
  }
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) { x2[i] = x2[i] + A[j][i] * y2[j]; }
  }
}

int main() {
  init();
  for (int t = 0; t < 40; t++) { kernel(); }
  float s = 0.0;
  for (int i = 0; i < N; i++) { s += x1[i] + x2[i]; }
  return (int)s;
}
|}

let symm =
  {|
const int N = 36;

float A[N][N]; float B[N][N]; float C[N][N];

void init() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      A[i][j] = (float)((i + j) % 11) / 11.0;
      B[i][j] = (float)((i * j + 1) % 7) / 7.0;
      C[i][j] = (float)((i - j + 40) % 13) / 13.0;
    }
  }
}

void kernel(float alpha, float beta) {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      float temp2 = 0.0;
      for (int k = 0; k < i; k++) {
        C[k][j] += alpha * B[i][j] * A[i][k];
        temp2 += B[k][j] * A[i][k];
      }
      C[i][j] = beta * C[i][j] + alpha * B[i][j] * A[i][i]
              + alpha * temp2;
    }
  }
}

int main() {
  init();
  for (int t = 0; t < 14; t++) { kernel(1.5, 1.2); }
  float s = 0.0;
  for (int i = 0; i < N; i++) { s += C[i][N - 1 - i]; }
  return (int)s;
}
|}

let syrk =
  {|
const int N = 36;

float A[N][N]; float C[N][N];

void init() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      A[i][j] = (float)((i * j + 3) % 9) / 9.0;
      C[i][j] = (float)((i + j) % 5) / 5.0;
    }
  }
}

void kernel(float alpha, float beta) {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j <= i; j++) { C[i][j] = C[i][j] * beta; }
    for (int k = 0; k < N; k++) {
      for (int j = 0; j <= i; j++) {
        C[i][j] += alpha * A[i][k] * A[j][k];
      }
    }
  }
}

int main() {
  init();
  for (int t = 0; t < 16; t++) { kernel(1.1, 0.9); }
  float s = 0.0;
  for (int i = 0; i < N; i++) { s += C[i][i / 2]; }
  return (int)s;
}
|}

let trmm =
  {|
const int N = 36;

float A[N][N]; float B[N][N];

void init() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      A[i][j] = (float)((i * j + 1) % 13) / 13.0;
      B[i][j] = (float)((i + 2 * j) % 7) / 7.0;
    }
  }
}

void kernel(float alpha) {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      for (int k = i + 1; k < N; k++) {
        B[i][j] += A[k][i] * B[k][j];
      }
      B[i][j] = alpha * B[i][j];
    }
  }
}

int main() {
  init();
  for (int t = 0; t < 16; t++) { kernel(1.02); }
  float s = 0.0;
  for (int i = 0; i < N; i++) { s += B[i][0]; }
  return (int)s;
}
|}

let cholesky =
  {|
const int N = 40;

float A[N][N];

void init() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      if (i == j) { A[i][j] = (float)N + 2.0; }
      else { A[i][j] = 1.0 / (float)(1 + (i + j) % 7); }
    }
  }
}

float my_sqrt(float v) {
  float g = v;
  for (int it = 0; it < 12; it++) { g = 0.5 * (g + v / g); }
  return g;
}

void kernel() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < i; j++) {
      for (int k = 0; k < j; k++) {
        A[i][j] -= A[i][k] * A[j][k];
      }
      A[i][j] = A[i][j] / A[j][j];
    }
    for (int k = 0; k < i; k++) {
      A[i][i] -= A[i][k] * A[i][k];
    }
    A[i][i] = my_sqrt(A[i][i]);
  }
}

int main() {
  init();
  for (int t = 0; t < 20; t++) { init(); kernel(); }
  float s = 0.0;
  for (int i = 0; i < N; i++) { s += A[i][i]; }
  return (int)s;
}
|}

let gramschmidt =
  {|
const int N = 28;

float A[N][N]; float R[N][N]; float Q[N][N];

void init() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      A[i][j] = (float)(((i * 3 + j * 7) % 19) + 1) / 19.0;
      R[i][j] = 0.0;
      Q[i][j] = 0.0;
    }
  }
}

float my_sqrt(float v) {
  float g = v;
  for (int it = 0; it < 12; it++) { g = 0.5 * (g + v / g); }
  return g;
}

void kernel() {
  for (int k = 0; k < N; k++) {
    float nrm = 0.0;
    for (int i = 0; i < N; i++) { nrm += A[i][k] * A[i][k]; }
    R[k][k] = my_sqrt(nrm);
    for (int i = 0; i < N; i++) { Q[i][k] = A[i][k] / R[k][k]; }
    for (int j = k + 1; j < N; j++) {
      R[k][j] = 0.0;
      for (int i = 0; i < N; i++) { R[k][j] += Q[i][k] * A[i][j]; }
      for (int i = 0; i < N; i++) { A[i][j] = A[i][j] - Q[i][k] * R[k][j]; }
    }
  }
}

int main() {
  for (int t = 0; t < 16; t++) { init(); kernel(); }
  float s = 0.0;
  for (int i = 0; i < N; i++) { s += R[i][i]; }
  return (int)s;
}
|}

let lu =
  {|
const int N = 36;

float A[N][N];

void init() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      if (i == j) { A[i][j] = (float)N * 2.0; }
      else { A[i][j] = (float)(((i + j) % 9) + 1) / 9.0; }
    }
  }
}

void kernel() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < i; j++) {
      for (int k = 0; k < j; k++) { A[i][j] -= A[i][k] * A[k][j]; }
      A[i][j] = A[i][j] / A[j][j];
    }
    for (int j = i; j < N; j++) {
      for (int k = 0; k < i; k++) { A[i][j] -= A[i][k] * A[k][j]; }
    }
  }
}

int main() {
  for (int t = 0; t < 24; t++) { init(); kernel(); }
  float s = 0.0;
  for (int i = 0; i < N; i++) { s += A[i][i]; }
  return (int)s;
}
|}

let trisolv =
  {|
const int N = 64;

float L[N][N]; float x[N]; float b[N];

void init() {
  for (int i = 0; i < N; i++) {
    b[i] = (float)(i % 17) / 17.0;
    for (int j = 0; j <= i; j++) {
      L[i][j] = (float)((i + j) % 11 + 1) / 11.0;
    }
    L[i][i] = 2.0 + (float)(i % 3);
  }
}

void kernel() {
  for (int i = 0; i < N; i++) {
    x[i] = b[i];
    for (int j = 0; j < i; j++) { x[i] -= L[i][j] * x[j]; }
    x[i] = x[i] / L[i][i];
  }
}

int main() {
  init();
  for (int t = 0; t < 240; t++) { kernel(); }
  float s = 0.0;
  for (int i = 0; i < N; i++) { s += x[i]; }
  return (int)(s * 10.0);
}
|}

let covariance =
  {|
const int M = 32;
const int N = 40;

float data[N][M]; float cov[M][M]; float mean[M];

void init() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < M; j++) {
      data[i][j] = (float)((i * j + i + 3) % 23) / 23.0;
    }
  }
}

void kernel() {
  for (int j = 0; j < M; j++) {
    mean[j] = 0.0;
    for (int i = 0; i < N; i++) { mean[j] += data[i][j]; }
    mean[j] = mean[j] / (float)N;
  }
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < M; j++) { data[i][j] -= mean[j]; }
  }
  for (int i = 0; i < M; i++) {
    for (int j = i; j < M; j++) {
      cov[i][j] = 0.0;
      for (int k = 0; k < N; k++) { cov[i][j] += data[k][i] * data[k][j]; }
      cov[i][j] = cov[i][j] / (float)(N - 1);
      cov[j][i] = cov[i][j];
    }
  }
}

int main() {
  for (int t = 0; t < 20; t++) { init(); kernel(); }
  float s = 0.0;
  for (int i = 0; i < M; i++) { s += cov[i][i]; }
  return (int)(s * 10.0);
}
|}

let jacobi_2d =
  {|
const int N = 40;
const int STEPS = 60;

float A[N][N]; float B[N][N];

void init() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      A[i][j] = (float)(i * (j + 2) % 17) / 17.0;
      B[i][j] = A[i][j];
    }
  }
}

void kernel() {
  for (int t = 0; t < STEPS; t++) {
    for (int i = 1; i < N - 1; i++) {
      for (int j = 1; j < N - 1; j++) {
        B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1]
                         + A[i + 1][j] + A[i - 1][j]);
      }
    }
    for (int i = 1; i < N - 1; i++) {
      for (int j = 1; j < N - 1; j++) {
        A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][j + 1]
                         + B[i + 1][j] + B[i - 1][j]);
      }
    }
  }
}

int main() {
  init();
  for (int r = 0; r < 3; r++) { kernel(); }
  float s = 0.0;
  for (int i = 0; i < N; i++) { s += A[i][i]; }
  return (int)(s * 100.0);
}
|}

let deriche =
  {|
const int W = 48;
const int H = 36;

float img_in[W][H]; float img_out[W][H]; float y1[W][H]; float y2[W][H];

void init() {
  for (int i = 0; i < W; i++) {
    for (int j = 0; j < H; j++) {
      img_in[i][j] = (float)((313 * i + 991 * j) % 65536) / 65536.0;
    }
  }
}

void kernel(float a1, float a2, float b1, float b2) {
  for (int i = 0; i < W; i++) {
    float ym1 = 0.0;
    float xm1 = 0.0;
    for (int j = 0; j < H; j++) {
      y1[i][j] = a1 * img_in[i][j] + a2 * xm1 + b1 * ym1;
      xm1 = img_in[i][j];
      ym1 = y1[i][j];
    }
  }
  for (int i = 0; i < W; i++) {
    float yp1 = 0.0;
    float xp1 = 0.0;
    for (int j = H - 1; j >= 0; j--) {
      y2[i][j] = a2 * xp1 + b2 * yp1;
      xp1 = img_in[i][j];
      yp1 = y2[i][j];
    }
  }
  for (int i = 0; i < W; i++) {
    for (int j = 0; j < H; j++) {
      img_out[i][j] = y1[i][j] + y2[i][j];
    }
  }
  for (int j = 0; j < H; j++) {
    float tm1 = 0.0;
    float ym1 = 0.0;
    for (int i = 0; i < W; i++) {
      y1[i][j] = a1 * img_out[i][j] + a2 * tm1 + b1 * ym1;
      tm1 = img_out[i][j];
      ym1 = y1[i][j];
    }
  }
  for (int j = 0; j < H; j++) {
    float tp1 = 0.0;
    float yp1 = 0.0;
    for (int i = W - 1; i >= 0; i--) {
      y2[i][j] = a2 * tp1 + b2 * yp1;
      tp1 = img_out[i][j];
      yp1 = y2[i][j];
    }
  }
  for (int i = 0; i < W; i++) {
    for (int j = 0; j < H; j++) {
      img_out[i][j] = y1[i][j] + y2[i][j];
    }
  }
}

int main() {
  init();
  for (int t = 0; t < 40; t++) { kernel(0.2, 0.3, 0.25, 0.15); }
  float s = 0.0;
  for (int i = 0; i < W; i++) { s += img_out[i][i % H]; }
  return (int)(s * 10.0);
}
|}

let floyd_warshall =
  {|
const int N = 40;

int path[N][N];

void init() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      if (i == j) { path[i][j] = 0; }
      else { path[i][j] = (i * j + i + j) % 97 + 1; }
    }
  }
}

void kernel() {
  for (int k = 0; k < N; k++) {
    for (int i = 0; i < N; i++) {
      for (int j = 0; j < N; j++) {
        int cur = path[i][j];
        int alt = path[i][k] + path[k][j];
        if (alt < cur) { cur = alt; }
        path[i][j] = cur;
      }
    }
  }
}

int main() {
  for (int t = 0; t < 10; t++) { init(); kernel(); }
  int s = 0;
  for (int i = 0; i < N; i++) { s += path[i][N - 1 - i]; }
  return s % 1000;
}
|}

let all =
  [ "3mm", three_mm;
    "atax", atax;
    "bicg", bicg;
    "doitgen", doitgen;
    "mvt", mvt;
    "symm", symm;
    "syrk", syrk;
    "trmm", trmm;
    "cholesky", cholesky;
    "gramschmidt", gramschmidt;
    "lu", lu;
    "trisolv", trisolv;
    "covariance", covariance;
    "jacobi-2d", jacobi_2d;
    "deriche", deriche;
    "floyd-warshall", floyd_warshall ]
