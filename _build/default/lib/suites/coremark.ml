(* CoreMark-Pro workloads in MiniC.

   loops-all-mid-10k-sp is deliberately built from many small single-
   precision loops whose bodies carry floating-point recurrences (IIR,
   prefix sums, Horner), reproducing the paper's observation that its
   pipeline II is recurrence-limited so coupled-only Cayman nearly matches
   full Cayman on this workload. *)

let cjpeg_rose =
  {|
const int W = 40;
const int H = 40;

int rgb_r[W][H]; int rgb_g[W][H]; int rgb_b[W][H];
float ylum[W][H]; float cb[W][H]; float cr[W][H];
float dct_mat[8][8];
float block[8][8]; float tmp[8][8]; float coef[8][8];
int bits[4096];

float my_cos(float x) {
  while (x > 3.14159265) { x -= 6.2831853; }
  while (x < -3.14159265) { x += 6.2831853; }
  float x2 = x * x;
  return 1.0 - x2 / 2.0 * (1.0 - x2 / 12.0 * (1.0 - x2 / 30.0));
}

void init() {
  int seed = 99;
  for (int i = 0; i < W; i++) {
    for (int j = 0; j < H; j++) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      rgb_r[i][j] = seed % 256;
      rgb_g[i][j] = (seed / 256) % 256;
      rgb_b[i][j] = (seed / 65536) % 256;
    }
  }
  for (int u = 0; u < 8; u++) {
    for (int x = 0; x < 8; x++) {
      float c = 0.5;
      if (u == 0) { c = 0.353553391; }
      dct_mat[u][x] = c * my_cos((2.0 * (float)x + 1.0) * (float)u
                                 * 3.14159265 / 16.0);
    }
  }
}

void color_convert() {
  for (int i = 0; i < W; i++) {
    for (int j = 0; j < H; j++) {
      float r = (float)rgb_r[i][j];
      float g = (float)rgb_g[i][j];
      float b = (float)rgb_b[i][j];
      ylum[i][j] = 0.299 * r + 0.587 * g + 0.114 * b - 128.0;
      cb[i][j] = -0.16874 * r - 0.33126 * g + 0.5 * b;
      cr[i][j] = 0.5 * r - 0.41869 * g - 0.08131 * b;
    }
  }
}

void dct_block() {
  for (int u = 0; u < 8; u++) {
    for (int x = 0; x < 8; x++) {
      float acc = 0.0;
      for (int y = 0; y < 8; y++) { acc += dct_mat[u][y] * block[y][x]; }
      tmp[u][x] = acc;
    }
  }
  for (int u = 0; u < 8; u++) {
    for (int v = 0; v < 8; v++) {
      float acc = 0.0;
      for (int y = 0; y < 8; y++) { acc += tmp[u][y] * dct_mat[v][y]; }
      coef[u][v] = acc;
    }
  }
}

int encode() {
  int n = 0;
  for (int bi = 0; bi < W / 8; bi++) {
    for (int bj = 0; bj < H / 8; bj++) {
      for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
          block[i][j] = ylum[bi * 8 + i][bj * 8 + j];
        }
      }
      dct_block();
      for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
          int q = (int)(coef[i][j]) / (6 + i + j);
          if (q != 0) {
            bits[n % 4096] = q;
            n++;
          }
        }
      }
    }
  }
  return n;
}

int main() {
  init();
  int total = 0;
  for (int t = 0; t < 24; t++) {
    color_convert();
    total += encode();
  }
  return total % 65536;
}
|}

let zip_test =
  {|
const int LEN = 4096;
const int HASH_SIZE = 1024;
const int MIN_MATCH = 3;
const int MAX_MATCH = 32;

int data[LEN];
int head[HASH_SIZE];
int prev[LEN];
int lit_count[1];
int match_count[1];
int match_bytes[1];

void init() {
  int seed = 4242;
  for (int i = 0; i < LEN; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    if (seed % 4 == 0) {
      data[i] = seed % 8;
    } else {
      data[i] = (seed / 64) % 24;
    }
  }
}

int hash3(int pos) {
  int h = data[pos] * 33 + data[pos + 1];
  h = h * 33 + data[pos + 2];
  return (h * 2654435761) % HASH_SIZE;
}

void deflate() {
  for (int i = 0; i < HASH_SIZE; i++) { head[i] = -1; }
  for (int i = 0; i < LEN; i++) { prev[i] = -1; }
  lit_count[0] = 0;
  match_count[0] = 0;
  match_bytes[0] = 0;
  int pos = 0;
  while (pos < LEN - MAX_MATCH) {
    int h = hash3(pos);
    if (h < 0) { h = h + HASH_SIZE; }
    int cand = head[h];
    int best_len = 0;
    int chain = 0;
    while (cand >= 0 && chain < 8) {
      int len = 0;
      while (len < MAX_MATCH && data[cand + len] == data[pos + len]) {
        len++;
      }
      if (len > best_len) { best_len = len; }
      cand = prev[cand];
      chain++;
    }
    prev[pos] = head[h];
    head[h] = pos;
    if (best_len >= MIN_MATCH) {
      match_count[0] += 1;
      match_bytes[0] += best_len;
      pos += best_len;
    } else {
      lit_count[0] += 1;
      pos++;
    }
  }
}

int main() {
  init();
  for (int t = 0; t < 60; t++) { deflate(); }
  return (match_count[0] * 3 + lit_count[0] + match_bytes[0]) % 65536;
}
|}

let parser_125k =
  {|
const int LEN = 6144;
const int NCLASS = 6; // letter digit space open close punct
const int NSTATE = 3; // idle in-word in-number

int text[LEN];
int char_class[128];
int next_state[18];   // NSTATE * NCLASS
int starts_token[18]; // 1 when the transition begins a new token
int counts[NCLASS];
int depth_hist[8];

void build_tables() {
  for (int c = 0; c < 128; c++) {
    if (c >= 97 && c <= 122) { char_class[c] = 0; }
    else if (c >= 48 && c <= 57) { char_class[c] = 1; }
    else if (c == 32) { char_class[c] = 2; }
    else if (c == 40) { char_class[c] = 3; }
    else if (c == 41) { char_class[c] = 4; }
    else { char_class[c] = 5; }
  }
  for (int st = 0; st < NSTATE; st++) {
    for (int cl = 0; cl < NCLASS; cl++) {
      int ns = 0;
      if (cl == 0) { ns = 1; }
      if (cl == 1) { ns = 2; }
      next_state[st * NCLASS + cl] = ns;
      int starts = 0;
      if (cl == 0 && st != 1) { starts = 1; }
      if (cl == 1 && st != 2) { starts = 1; }
      if (cl >= 2) { starts = 1; }
      starts_token[st * NCLASS + cl] = starts;
    }
  }
}

void init() {
  int seed = 31415;
  for (int i = 0; i < LEN; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    int r = seed % 100;
    if (r < 40) { text[i] = 97 + seed % 26; }       // letter
    else if (r < 60) { text[i] = 48 + seed % 10; }  // digit
    else if (r < 75) { text[i] = 32; }              // space
    else if (r < 85) { text[i] = 40; }              // '('
    else if (r < 95) { text[i] = 41; }              // ')'
    else { text[i] = 46; }                          // '.'
  }
}

// Table-driven tokenizer: the hot loop is branch-free, all control is
// folded into the transition tables (the way production scanners are
// written), plus a parenthesis-depth histogram.
void tokenize() {
  for (int i = 0; i < NCLASS; i++) { counts[i] = 0; }
  for (int i = 0; i < 8; i++) { depth_hist[i] = 0; }
  int state = 0;
  int depth = 0;
  for (int i = 0; i < LEN; i++) {
    int cls = char_class[text[i]];
    int t = state * NCLASS + cls;
    counts[cls] += starts_token[t];
    state = next_state[t];
    int delta = 0;
    if (cls == 3) { delta = 1; }
    if (cls == 4) { delta = -1; }
    depth += delta;
    if (depth < 0) { depth = 0; }
    if (depth > 7) { depth = 7; }
    depth_hist[depth] += 1;
  }
}

int main() {
  build_tables();
  init();
  for (int t = 0; t < 120; t++) { tokenize(); }
  int s = 0;
  for (int i = 0; i < NCLASS; i++) { s += counts[i] * (i + 1); }
  for (int i = 0; i < 8; i++) { s += depth_hist[i] * i; }
  return s % 65536;
}
|}

let nnet_test =
  {|
const int NIN = 24;
const int NHID = 16;
const int NOUT = 8;
const int NSAMPLES = 16;

float w1[NHID][NIN]; float w2[NOUT][NHID];
float input[NSAMPLES][NIN]; float target[NSAMPLES][NOUT];
float hidden[NHID]; float output[NOUT];
float delta_out[NOUT]; float delta_hid[NHID];

float sigmoid(float x) {
  if (x > 6.0) { return 1.0; }
  if (x < -6.0) { return 0.0; }
  float a = 1.0 + x / 16.0 * (1.0 + x / 48.0 * x / 2.0);
  // rational approximation of the logistic function
  float e = a * a;
  e = e * e;
  e = e * e;
  e = e * e;
  return e / (1.0 + e);
}

void init() {
  int seed = 777;
  for (int i = 0; i < NHID; i++) {
    for (int j = 0; j < NIN; j++) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      w1[i][j] = (float)(seed % 200 - 100) / 500.0;
    }
  }
  for (int i = 0; i < NOUT; i++) {
    for (int j = 0; j < NHID; j++) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      w2[i][j] = (float)(seed % 200 - 100) / 500.0;
    }
  }
  for (int s = 0; s < NSAMPLES; s++) {
    for (int j = 0; j < NIN; j++) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      input[s][j] = (float)(seed % 1000) / 1000.0;
    }
    for (int j = 0; j < NOUT; j++) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      target[s][j] = (float)(seed % 1000) / 1000.0;
    }
  }
}

void forward(int s) {
  for (int i = 0; i < NHID; i++) {
    float acc = 0.0;
    for (int j = 0; j < NIN; j++) { acc += w1[i][j] * input[s][j]; }
    hidden[i] = sigmoid(acc);
  }
  for (int i = 0; i < NOUT; i++) {
    float acc = 0.0;
    for (int j = 0; j < NHID; j++) { acc += w2[i][j] * hidden[j]; }
    output[i] = sigmoid(acc);
  }
}

void backward(int s, float lr) {
  for (int i = 0; i < NOUT; i++) {
    float err = target[s][i] - output[i];
    delta_out[i] = err * output[i] * (1.0 - output[i]);
  }
  for (int j = 0; j < NHID; j++) {
    float acc = 0.0;
    for (int i = 0; i < NOUT; i++) { acc += delta_out[i] * w2[i][j]; }
    delta_hid[j] = acc * hidden[j] * (1.0 - hidden[j]);
  }
  for (int i = 0; i < NOUT; i++) {
    for (int j = 0; j < NHID; j++) {
      w2[i][j] += lr * delta_out[i] * hidden[j];
    }
  }
  for (int i = 0; i < NHID; i++) {
    for (int j = 0; j < NIN; j++) {
      w1[i][j] += lr * delta_hid[i] * input[s][j];
    }
  }
}

int main() {
  init();
  for (int epoch = 0; epoch < 60; epoch++) {
    for (int s = 0; s < NSAMPLES; s++) {
      forward(s);
      backward(s, 0.1);
    }
  }
  float acc = 0.0;
  for (int i = 0; i < NOUT; i++) { acc += output[i]; }
  return (int)(acc * 1000.0);
}
|}

let linear_alg =
  {|
const int N = 40;

float A[N][N]; float LUmat[N][N]; float b[N]; float x[N]; float y[N];

void init() {
  for (int i = 0; i < N; i++) {
    b[i] = (float)((i * 7 + 3) % 19) / 19.0;
    for (int j = 0; j < N; j++) {
      if (i == j) { A[i][j] = (float)N + 1.0; }
      else { A[i][j] = (float)((i * j + i + j) % 13) / 13.0; }
    }
  }
}

void decompose() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) { LUmat[i][j] = A[i][j]; }
  }
  for (int k = 0; k < N; k++) {
    for (int i = k + 1; i < N; i++) {
      LUmat[i][k] = LUmat[i][k] / LUmat[k][k];
      for (int j = k + 1; j < N; j++) {
        LUmat[i][j] -= LUmat[i][k] * LUmat[k][j];
      }
    }
  }
}

void solve() {
  for (int i = 0; i < N; i++) {
    y[i] = b[i];
    for (int j = 0; j < i; j++) { y[i] -= LUmat[i][j] * y[j]; }
  }
  for (int i = N - 1; i >= 0; i--) {
    x[i] = y[i];
    for (int j = i + 1; j < N; j++) { x[i] -= LUmat[i][j] * x[j]; }
    x[i] = x[i] / LUmat[i][i];
  }
}

float residual() {
  float r = 0.0;
  for (int i = 0; i < N; i++) {
    float acc = 0.0;
    for (int j = 0; j < N; j++) { acc += A[i][j] * x[j]; }
    float d = acc - b[i];
    r += d * d;
  }
  return r;
}

int main() {
  init();
  float total = 0.0;
  for (int t = 0; t < 24; t++) {
    decompose();
    solve();
    total += residual();
  }
  float s = total;
  for (int i = 0; i < N; i++) { s += x[i]; }
  return (int)(s * 100.0);
}
|}

let loops_all =
  {|
const int N = 2048;

float a[N]; float b[N]; float c[N]; float d[N];

void init() {
  int seed = 2024;
  for (int i = 0; i < N; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    a[i] = (float)(seed % 1000) / 1000.0;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    b[i] = (float)(seed % 1000) / 1000.0;
    c[i] = 0.0;
    d[i] = 0.0;
  }
}

// Prefix sum: carried dependency through memory.
void prefix() {
  c[0] = a[0];
  for (int i = 1; i < N; i++) { c[i] = c[i - 1] + a[i]; }
}

// First-order IIR filter: carried dependency through a register.
float iir(float alpha) {
  float state = 0.0;
  for (int i = 0; i < N; i++) {
    state = alpha * state + (1.0 - alpha) * a[i];
    d[i] = state;
  }
  return state;
}

// Dot product: floating-point reduction.
float dot() {
  float acc = 0.0;
  for (int i = 0; i < N; i++) { acc += a[i] * b[i]; }
  return acc;
}

// Horner polynomial evaluation per element, recurrence inside.
void horner() {
  for (int i = 0; i < N; i++) {
    float p = 0.0;
    float xv = a[i];
    p = 0.5;
    p = p * xv + 0.25;
    p = p * xv + 0.125;
    p = p * xv + 0.0625;
    b[i] = p;
  }
}

// Running maximum: compare-select recurrence.
float running_max() {
  float m = a[0];
  for (int i = 1; i < N; i++) {
    if (a[i] > m) { m = a[i]; }
  }
  return m;
}

// Alternating-sign accumulation.
float alt_sum() {
  float acc = 0.0;
  float sign = 1.0;
  for (int i = 0; i < N; i++) {
    acc += sign * c[i];
    sign = -sign;
  }
  return acc;
}

// Second-order recurrence (Fibonacci-like smoothing).
void smooth2() {
  d[0] = a[0];
  d[1] = a[1];
  for (int i = 2; i < N; i++) {
    d[i] = 0.5 * d[i - 1] + 0.3 * d[i - 2] + 0.2 * a[i];
  }
}

// Scaled copy with strided access.
void strided() {
  for (int i = 0; i < N / 2; i++) {
    b[2 * i] = 0.9 * a[2 * i] + 0.1;
    b[2 * i + 1] = 0.9 * a[2 * i + 1] - 0.1;
  }
}

int main() {
  init();
  float acc = 0.0;
  for (int t = 0; t < 60; t++) {
    prefix();
    acc += iir(0.9);
    acc += dot();
    horner();
    acc += running_max();
    acc += alt_sum();
    smooth2();
    strided();
  }
  return (int)acc;
}
|}

let all =
  [ "cjpeg-rose7-preset", cjpeg_rose;
    "zip-test", zip_test;
    "parser-125k", parser_125k;
    "nnet-test", nnet_test;
    "linear-alg-mid-100x100-sp", linear_alg;
    "loops-all-mid-10k-sp", loops_all ]
