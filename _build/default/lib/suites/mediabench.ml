(* MediaBench workloads in MiniC: cjpeg (8x8 block DCT + quantization +
   zigzag run-length) and epic (separable pyramid filter + quantization). *)

let cjpeg =
  {|
const int W = 48;
const int H = 48;
const int NB = 36; // (W/8)*(H/8)

float image[W][H];
float dct_mat[8][8];
float block[8][8]; float tmp[8][8]; float coef[8][8];
int quant[8][8];
int zigzag_i[64]; int zigzag_j[64];
int out_syms[4096];

float my_cos(float x) {
  while (x > 3.14159265) { x -= 6.2831853; }
  while (x < -3.14159265) { x += 6.2831853; }
  float x2 = x * x;
  return 1.0 - x2 / 2.0 * (1.0 - x2 / 12.0 * (1.0 - x2 / 30.0));
}

void init() {
  for (int i = 0; i < W; i++) {
    for (int j = 0; j < H; j++) {
      image[i][j] = (float)((i * 17 + j * 31 + (i * j) % 5) % 256);
    }
  }
  for (int u = 0; u < 8; u++) {
    for (int x = 0; x < 8; x++) {
      float c = 0.5;
      if (u == 0) { c = 0.353553391; }
      dct_mat[u][x] = c * my_cos((2.0 * (float)x + 1.0) * (float)u
                                 * 3.14159265 / 16.0);
    }
  }
  for (int u = 0; u < 8; u++) {
    for (int v = 0; v < 8; v++) {
      quant[u][v] = 8 + u + v + (u * v) / 2;
    }
  }
  int k = 0;
  for (int s = 0; s < 15; s++) {
    for (int i = 0; i <= s; i++) {
      int j = s - i;
      if (i < 8 && j < 8) {
        zigzag_i[k] = i;
        zigzag_j[k] = j;
        k++;
      }
    }
  }
}

// 2D DCT of one 8x8 block by two matrix products.
void dct_block() {
  for (int u = 0; u < 8; u++) {
    for (int x = 0; x < 8; x++) {
      float acc = 0.0;
      for (int y = 0; y < 8; y++) { acc += dct_mat[u][y] * block[y][x]; }
      tmp[u][x] = acc;
    }
  }
  for (int u = 0; u < 8; u++) {
    for (int v = 0; v < 8; v++) {
      float acc = 0.0;
      for (int y = 0; y < 8; y++) { acc += tmp[u][y] * dct_mat[v][y]; }
      coef[u][v] = acc;
    }
  }
}

int compress() {
  int nsym = 0;
  for (int bi = 0; bi < W / 8; bi++) {
    for (int bj = 0; bj < H / 8; bj++) {
      for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
          block[i][j] = image[bi * 8 + i][bj * 8 + j] - 128.0;
        }
      }
      dct_block();
      int run = 0;
      for (int k = 0; k < 64; k++) {
        int zi = zigzag_i[k];
        int zj = zigzag_j[k];
        int q = (int)(coef[zi][zj]) / quant[zi][zj];
        if (q == 0) { run++; }
        else {
          out_syms[nsym % 4096] = (run << 8) | (q & 255);
          nsym++;
          run = 0;
        }
      }
      if (run > 0) {
        out_syms[nsym % 4096] = 0;
        nsym++;
      }
    }
  }
  return nsym;
}

int main() {
  init();
  int total = 0;
  for (int t = 0; t < 20; t++) { total += compress(); }
  return total % 65536;
}
|}

let epic =
  {|
const int W = 64;
const int H = 64;

float src[W][H]; float lo[W][H]; float tmp[W][H];
float lev1[32][32]; float lev2[16][16];
int qcount[16];

void init() {
  for (int i = 0; i < W; i++) {
    for (int j = 0; j < H; j++) {
      src[i][j] = (float)((i * 11 + j * 7 + (i * j) % 13) % 256) / 256.0;
    }
  }
  for (int i = 0; i < 16; i++) { qcount[i] = 0; }
}

// Separable 5-tap binomial lowpass over src into lo (clamped borders).
void lowpass() {
  for (int i = 0; i < W; i++) {
    for (int j = 2; j < H - 2; j++) {
      tmp[i][j] = (src[i][j - 2] + 4.0 * src[i][j - 1] + 6.0 * src[i][j]
                   + 4.0 * src[i][j + 1] + src[i][j + 2]) / 16.0;
    }
    tmp[i][0] = src[i][0];
    tmp[i][1] = src[i][1];
    tmp[i][H - 2] = src[i][H - 2];
    tmp[i][H - 1] = src[i][H - 1];
  }
  for (int j = 0; j < H; j++) {
    for (int i = 2; i < W - 2; i++) {
      lo[i][j] = (tmp[i - 2][j] + 4.0 * tmp[i - 1][j] + 6.0 * tmp[i][j]
                  + 4.0 * tmp[i + 1][j] + tmp[i + 2][j]) / 16.0;
    }
    lo[0][j] = tmp[0][j];
    lo[1][j] = tmp[1][j];
    lo[W - 2][j] = tmp[W - 2][j];
    lo[W - 1][j] = tmp[W - 1][j];
  }
}

void pyramid() {
  lowpass();
  for (int i = 0; i < 32; i++) {
    for (int j = 0; j < 32; j++) {
      lev1[i][j] = lo[2 * i][2 * j];
    }
  }
  for (int i = 0; i < 16; i++) {
    for (int j = 0; j < 16; j++) {
      lev2[i][j] = (lev1[2 * i][2 * j] + lev1[2 * i + 1][2 * j]
                    + lev1[2 * i][2 * j + 1] + lev1[2 * i + 1][2 * j + 1])
                   / 4.0;
    }
  }
}

void quantize() {
  for (int i = 0; i < W; i++) {
    for (int j = 0; j < H; j++) {
      float d = src[i][j] - lo[i][j];
      int q = (int)(d * 32.0 + 8.0);
      if (q < 0) { q = 0; }
      if (q > 15) { q = 15; }
      qcount[q]++;
    }
  }
}

int main() {
  init();
  for (int t = 0; t < 40; t++) {
    pyramid();
    quantize();
  }
  int s = 0;
  for (int i = 0; i < 16; i++) { s += qcount[i] * i; }
  return s % 65536;
}
|}

let all = [ "cjpeg", cjpeg; "epic", epic ]
