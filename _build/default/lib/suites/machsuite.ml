(* MachSuite kernels in MiniC: fft (iterative radix-2), md (Lennard-Jones
   with neighbor lists, irregular access), spmv (CSR, irregular), and nw
   (Needleman-Wunsch integer DP). *)

let fft =
  {|
const int N = 512;
const int LOGN = 9;

float re[N]; float im[N];
float tw_re[N]; float tw_im[N];
int bitrev[N];

float my_sin(float x) {
  while (x > 3.14159265) { x -= 6.2831853; }
  while (x < -3.14159265) { x += 6.2831853; }
  float x2 = x * x;
  return x * (1.0 - x2 / 6.0 * (1.0 - x2 / 20.0 * (1.0 - x2 / 42.0)));
}

float my_cos(float x) { return my_sin(x + 1.57079632); }

void init() {
  for (int i = 0; i < N; i++) {
    re[i] = (float)((i * 37 + 11) % 256) / 256.0 - 0.5;
    im[i] = 0.0;
    float ang = -6.2831853 * (float)i / (float)N;
    tw_re[i] = my_cos(ang);
    tw_im[i] = my_sin(ang);
  }
  for (int i = 0; i < N; i++) {
    int x = i;
    int r = 0;
    for (int b = 0; b < LOGN; b++) {
      r = (r << 1) | (x & 1);
      x = x >> 1;
    }
    bitrev[i] = r;
  }
}

void reorder() {
  for (int i = 0; i < N; i++) {
    int j = bitrev[i];
    if (j > i) {
      float tr = re[i]; re[i] = re[j]; re[j] = tr;
      float ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
  }
}

void butterflies() {
  int span = 1;
  int stride = N >> 1;
  for (int stage = 0; stage < LOGN; stage++) {
    for (int base = 0; base < N; base += 2 * span) {
      for (int k = 0; k < span; k++) {
        int a = base + k;
        int b = a + span;
        int t = k * stride;
        float wr = tw_re[t];
        float wi = tw_im[t];
        float xr = re[b] * wr - im[b] * wi;
        float xi = re[b] * wi + im[b] * wr;
        re[b] = re[a] - xr;
        im[b] = im[a] - xi;
        re[a] = re[a] + xr;
        im[a] = im[a] + xi;
      }
    }
    span = span << 1;
    stride = stride >> 1;
  }
}

int main() {
  init();
  for (int t = 0; t < 30; t++) {
    reorder();
    butterflies();
  }
  float s = 0.0;
  for (int i = 0; i < 16; i++) { s += re[i] * re[i] + im[i] * im[i]; }
  return (int)s;
}
|}

let md =
  {|
const int NATOMS = 96;
const int NNEIGH = 12;

float px[NATOMS]; float py[NATOMS]; float pz[NATOMS];
float fx[NATOMS]; float fy[NATOMS]; float fz[NATOMS];
int neigh[NATOMS][NNEIGH];

void init() {
  int seed = 7;
  for (int i = 0; i < NATOMS; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    px[i] = (float)(seed % 1000) / 500.0 - 1.0;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    py[i] = (float)(seed % 1000) / 500.0 - 1.0;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    pz[i] = (float)(seed % 1000) / 500.0 - 1.0;
    for (int k = 0; k < NNEIGH; k++) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      int j = seed % NATOMS;
      if (j == i) { j = (j + 1) % NATOMS; }
      neigh[i][k] = j;
    }
  }
}

void forces() {
  for (int i = 0; i < NATOMS; i++) {
    float fxi = 0.0;
    float fyi = 0.0;
    float fzi = 0.0;
    float xi = px[i];
    float yi = py[i];
    float zi = pz[i];
    for (int k = 0; k < NNEIGH; k++) {
      int j = neigh[i][k];
      float dx = px[j] - xi;
      float dy = py[j] - yi;
      float dz = pz[j] - zi;
      float r2 = dx * dx + dy * dy + dz * dz + 0.01;
      float r2inv = 1.0 / r2;
      float r6inv = r2inv * r2inv * r2inv;
      float pot = r6inv * (1.5 * r6inv - 2.0);
      float force = r2inv * pot;
      fxi += force * dx;
      fyi += force * dy;
      fzi += force * dz;
    }
    fx[i] = fxi;
    fy[i] = fyi;
    fz[i] = fzi;
  }
}

int main() {
  init();
  for (int t = 0; t < 120; t++) { forces(); }
  float s = 0.0;
  for (int i = 0; i < NATOMS; i++) { s += fx[i] + fy[i] + fz[i]; }
  return (int)s;
}
|}

let spmv =
  {|
const int NROWS = 128;
const int NNZ_PER_ROW = 9;
const int NNZ = 1152;

float vals[NNZ]; int cols[NNZ]; int row_ptr[129];
float vec[NROWS]; float out[NROWS];

void init() {
  int seed = 13;
  for (int i = 0; i < NROWS; i++) {
    row_ptr[i] = i * NNZ_PER_ROW;
    vec[i] = (float)((i * 29 + 7) % 100) / 100.0;
  }
  row_ptr[NROWS] = NNZ;
  for (int k = 0; k < NNZ; k++) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    cols[k] = seed % NROWS;
    vals[k] = (float)(seed % 1000) / 1000.0;
  }
}

void kernel() {
  for (int i = 0; i < NROWS; i++) {
    float sum = 0.0;
    int start = row_ptr[i];
    int end = row_ptr[i + 1];
    for (int k = start; k < end; k++) {
      sum += vals[k] * vec[cols[k]];
    }
    out[i] = sum;
  }
}

int main() {
  init();
  for (int t = 0; t < 260; t++) { kernel(); }
  float s = 0.0;
  for (int i = 0; i < NROWS; i++) { s += out[i]; }
  return (int)s;
}
|}

let nw =
  {|
const int ALEN = 96;
const int BLEN = 96;
const int GAP = -1;
const int MATCH = 2;
const int MISMATCH = -1;

int seqa[ALEN]; int seqb[BLEN];
int score[97][97];

void init() {
  int seed = 5;
  for (int i = 0; i < ALEN; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    seqa[i] = seed % 4;
  }
  for (int j = 0; j < BLEN; j++) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    seqb[j] = seed % 4;
  }
}

void kernel() {
  for (int i = 0; i <= ALEN; i++) { score[i][0] = i * GAP; }
  for (int j = 0; j <= BLEN; j++) { score[0][j] = j * GAP; }
  for (int i = 1; i <= ALEN; i++) {
    for (int j = 1; j <= BLEN; j++) {
      int sub = MISMATCH;
      if (seqa[i - 1] == seqb[j - 1]) { sub = MATCH; }
      int d = score[i - 1][j - 1] + sub;
      int u = score[i - 1][j] + GAP;
      int l = score[i][j - 1] + GAP;
      int best = d;
      if (u > best) { best = u; }
      if (l > best) { best = l; }
      score[i][j] = best;
    }
  }
}

int main() {
  init();
  for (int t = 0; t < 40; t++) { kernel(); }
  return score[ALEN][BLEN];
}
|}

let all =
  [ "fft", fft; "md", md; "spmv", spmv; "nw", nw ]
