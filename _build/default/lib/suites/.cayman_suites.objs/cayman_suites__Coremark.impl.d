lib/suites/coremark.ml:
