lib/suites/machsuite.ml:
