lib/suites/suite.mli: Cayman_ir
