lib/suites/suite.ml: Cayman_frontend Coremark List Machsuite Mediabench Polybench String
