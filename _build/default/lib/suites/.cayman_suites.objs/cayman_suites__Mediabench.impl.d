lib/suites/mediabench.ml:
