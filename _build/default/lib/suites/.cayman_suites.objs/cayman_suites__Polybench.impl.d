lib/suites/polybench.ml:
