type benchmark = {
  name : string;
  suite : string;
  source : string;
}

let make suite (name, source) = { name; suite; source }

let all =
  List.map (make "PolyBench") Polybench.all
  @ List.map (make "MachSuite") Machsuite.all
  @ List.map (make "MediaBench") Mediabench.all
  @ List.map (make "CoreMark-Pro") Coremark.all

let find name = List.find_opt (fun b -> String.equal b.name name) all

let find_exn name =
  match find name with
  | Some b -> b
  | None -> invalid_arg ("Suite.find_exn: unknown benchmark " ^ name)

let names = List.map (fun b -> b.name) all

(* The four benchmarks (one per suite) whose Pareto fronts Fig. 6 plots. *)
let fig6 = [ "3mm"; "fft"; "epic"; "nnet-test" ]

let compile b = Cayman_frontend.Lower.compile b.source
