(** Structural Verilog netlist generation for kernel accelerators.

    Shares the synthesis {!Kernel.plan} with the estimator, so the
    emitted instance counts match the modelled area exactly: one
    primitive instance per operation (replicated by the unroll factor in
    pipelined bodies), one architectural register per IR register, an FSM
    state per block, interface instances per memory access, scratchpad
    banks and a DMA engine when the plan uses them. *)

type stats = {
  n_compute : int;  (** datapath unit instances *)
  n_mem : int;  (** interface instances *)
  n_regs : int;  (** architectural registers *)
  n_states : int;  (** FSM states (including IDLE/DONE) *)
  n_wires : int;
}

type t = {
  module_name : string;
  verilog : string;
  stats : stats;
}

(** [None] when the kernel is not synthesizable (same condition as
    {!Kernel.estimate}). *)
val of_kernel :
  Ctx.t ->
  Cayman_analysis.Region.t ->
  ?beta:float ->
  Kernel.config ->
  t option

(** Reusable (merged) accelerator skeleton: a shared reconfigurable
    datapath bank with muxed inputs and configuration registers, one FSM
    per covered region, and a global Ctrl unit (the paper's Fig. 5).
    Takes the merged resource vector so it stays independent of the
    selection layer. *)
val of_reusable :
  name:string ->
  units:(Cayman_ir.Op.unit_kind * int) list ->
  n_coupled:int ->
  n_decoupled:int ->
  sp_words:int ->
  fsms:int ->
  regions:string list ->
  t

(** Behavioural stub library for the emitted primitives. *)
val primitives : string
