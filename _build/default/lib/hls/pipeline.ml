module Ir = Cayman_ir
module An = Cayman_analysis

(* Cycle weight of a DFG node for recurrence-path queries. *)
let node_weight (dfg : Dfg.t) ~(iface : int -> Iface.kind) i =
  let instr = dfg.Dfg.instrs.(i) in
  match instr with
  | Ir.Instr.Assign _ -> 0.0
  | Ir.Instr.Load _ -> float_of_int (Iface.load_latency (iface i))
  | Ir.Instr.Store _ -> float_of_int (Iface.store_latency (iface i))
  | Ir.Instr.Unary _ | Ir.Instr.Binary _ | Ir.Instr.Compare _
  | Ir.Instr.Select _ ->
    (match Ir.Instr.unit_kind instr with
     | Some k -> float_of_int (Tech.latency_cycles k)
     | None -> 1.0)
  | Ir.Instr.Call _ -> 1.0

(* Recurrence-constrained minimum initiation interval of a single-block
   loop body: the longest dependence cycle divided by its distance.
   Scalar recurrences (accumulators) cycle from the consumers of the
   live-in register to its final definition; loop-carried memory
   dependencies cycle between the two accesses. *)
let rec_mii (ctx : Ctx.t) (dfg : Dfg.t) ~(iface : int -> Iface.kind)
    (loop : An.Loops.loop) =
  let weight = node_weight dfg ~iface in
  let body_label = dfg.Dfg.block.Ir.Block.label in
  let info = Ctx.loop_info ctx loop.An.Loops.header in
  match info with
  | None -> 1
  | Some info ->
    let scalar =
      List.fold_left
        (fun acc rid ->
          match Dfg.def_of dfg rid with
          | None -> acc
          | Some def ->
            let sources = Dfg.uses_of_live_in dfg rid in
            let sources = if sources = [] then [ def ] else sources in
            (match Dfg.longest_path dfg ~weight ~sources ~sink:def with
             | Some d -> max acc (int_of_float (ceil d))
             | None -> max acc (int_of_float (ceil (weight def)))))
        1 info.An.Memdep.recurrences
    in
    List.fold_left
      (fun acc (dep : An.Memdep.carried_dep) ->
        let a = dep.An.Memdep.src and b = dep.An.Memdep.dst in
        if
          String.equal a.An.Memdep.a_block body_label
          && String.equal b.An.Memdep.a_block body_label
        then begin
          let lo, hi =
            if a.An.Memdep.a_pos <= b.An.Memdep.a_pos then
              a.An.Memdep.a_pos, b.An.Memdep.a_pos
            else b.An.Memdep.a_pos, a.An.Memdep.a_pos
          in
          let dist = max 1 (Option.value dep.An.Memdep.distance ~default:1) in
          match Dfg.longest_path dfg ~weight ~sources:[ lo ] ~sink:hi with
          | Some d ->
            max acc (int_of_float (ceil (d /. float_of_int dist)))
          | None -> acc
        end
        else
          (* Dependence through blocks outside the body (should not happen
             for pipelineable loops); be conservative. *)
          max acc 4)
      scalar info.An.Memdep.carried

(* Resource-constrained MII under an unroll factor: shared-port accesses
   serialize; scratchpad accesses spread over [sp_banks] banks; decoupled
   streams never contend. *)
let res_mii (dfg : Dfg.t) ~(iface : int -> Iface.kind) ~unroll ~sp_banks =
  let port = ref 0 in
  let sp = ref 0 in
  List.iter
    (fun i ->
      let k = iface i in
      let occ =
        match dfg.Dfg.instrs.(i) with
        | Ir.Instr.Load _ -> Iface.load_occupancy k
        | Ir.Instr.Store _ -> Iface.store_occupancy k
        | Ir.Instr.Assign _ | Ir.Instr.Unary _ | Ir.Instr.Binary _
        | Ir.Instr.Compare _ | Ir.Instr.Select _ | Ir.Instr.Call _ -> 0
      in
      if Iface.uses_shared_port k then port := !port + occ
      else
        match k with
        | Iface.Scratchpad -> incr sp
        | Iface.Decoupled | Iface.Coupled | Iface.Scan -> ())
    (Dfg.mem_nodes dfg);
  let port_mii =
    int_of_float
      (ceil (float_of_int (!port * unroll) /. float_of_int Tech.coupled_ports))
  in
  let sp_mii =
    int_of_float
      (ceil (float_of_int (!sp * unroll) /. float_of_int (max 1 sp_banks)))
  in
  max 1 (max port_mii sp_mii)

let ii ctx dfg ~iface loop ~unroll ~sp_banks =
  max (rec_mii ctx dfg ~iface loop) (res_mii dfg ~iface ~unroll ~sp_banks)
