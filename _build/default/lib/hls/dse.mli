(** Exhaustive per-kernel design-space exploration, for measuring how
    close the paper's fast exploration strategy gets to the full space. *)

type space = {
  unrolls : int list;
  pipeline : bool list;
  modes : Kernel.mode list;
  betas : float list;
}

val default_space : space

(** Number of raw configurations in the space. *)
val size : space -> int

(** All estimable design points, deduplicated by (cycles, area). *)
val explore :
  Ctx.t -> Cayman_analysis.Region.t -> space -> Kernel.point list

(** Pareto frontier over (area, cycles). *)
val pareto : Kernel.point list -> Kernel.point list

val best_under : area:float -> Kernel.point list -> Kernel.point option

(** [(fast, exhaustive)] accelerator cycles at the area cap; [None] if
    either side has no feasible point. *)
val heuristic_vs_exhaustive :
  Ctx.t -> Cayman_analysis.Region.t -> area:float -> (float * float) option
