(** Loop pipelining model: initiation interval as
    [max(RecMII, ResMII)]. *)

val node_weight : Dfg.t -> iface:(int -> Iface.kind) -> int -> float

(** Recurrence-constrained MII of a single-block loop body. *)
val rec_mii :
  Ctx.t ->
  Dfg.t ->
  iface:(int -> Iface.kind) ->
  Cayman_analysis.Loops.loop ->
  int

(** Resource-constrained MII under an unroll factor. *)
val res_mii :
  Dfg.t -> iface:(int -> Iface.kind) -> unroll:int -> sp_banks:int -> int

val ii :
  Ctx.t ->
  Dfg.t ->
  iface:(int -> Iface.kind) ->
  Cayman_analysis.Loops.loop ->
  unroll:int ->
  sp_banks:int ->
  int
