(** Per-function analysis context: the paper's profiling/analysis results
    [R], bundled for the accelerator model and candidate selection. *)

type t = {
  program : Cayman_ir.Program.t;
  func : Cayman_ir.Func.t;
  profile : Cayman_sim.Profile.t;
  dom : Cayman_analysis.Dominance.t;
  loops : Cayman_analysis.Loops.t;
  live : Cayman_analysis.Liveness.t;
  scev : Cayman_analysis.Scev.t;
  loop_info : (string, Cayman_analysis.Memdep.loop_info) Hashtbl.t;
  dfgs : (string, Dfg.t) Hashtbl.t;
  trips : (string, float) Hashtbl.t;
}

val create :
  Cayman_ir.Program.t -> Cayman_sim.Profile.t -> Cayman_ir.Func.t -> t

val dfg : t -> string -> Dfg.t
val loop_info : t -> string -> Cayman_analysis.Memdep.loop_info option

(** Average profiled trip count, rounded (0 if the loop never entered). *)
val trip : t -> string -> int

val block_exec : t -> string -> int
val loop_entries : t -> Cayman_analysis.Loops.loop -> int

(** Contexts for every function reachable from main. *)
val for_program :
  Cayman_ir.Program.t -> Cayman_sim.Profile.t -> (string, t) Hashtbl.t
