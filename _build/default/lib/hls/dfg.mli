(** Per-block data-flow graphs.

    Nodes are the block's instructions (by index). Edges are register
    def-use dependencies plus conservative ordering between same-base
    memory accesses. Registers read before any local definition are the
    DFG's live-in inputs. *)

type t = {
  block : Cayman_ir.Block.t;
  instrs : Cayman_ir.Instr.t array;
  preds : int list array;
  live_in_uses : (string, int list) Hashtbl.t;
  last_def : (string, int) Hashtbl.t;
}

val of_block : Cayman_ir.Block.t -> t
val size : t -> int

(** Indices of load/store nodes, in program order. *)
val mem_nodes : t -> int list

val has_call : t -> bool

(** Multiset of datapath unit kinds used by compute nodes (stable order). *)
val unit_counts : t -> (Cayman_ir.Op.unit_kind * int) list

(** Longest path from any of [sources] to [sink] (inclusive of both ends'
    weights); [None] if unreachable. Used for recurrence-MII queries. *)
val longest_path :
  t -> weight:(int -> float) -> sources:int list -> sink:int -> float option

val uses_of_live_in : t -> string -> int list
val def_of : t -> string -> int option
