module Ir = Cayman_ir
module An = Cayman_analysis

(* Datapath-level merging support (Section III-E of the paper): the
   merging heuristic estimates area savings by *matching operations* of
   two accelerators' data-flow graphs and inserting multiplexers with
   configuration registers in front of every shared unit. This module
   extracts the operation nodes (with their ASAP schedule level) from a
   kernel's synthesis plan and computes the greedy pairing. *)

type node = {
  n_kind : Ir.Op.unit_kind;
  n_level : int;  (* ASAP issue cycle within its block *)
}

(* Compute nodes of every synthesized block of a kernel plan, pipelined
   bodies replicated by their unroll factor. *)
let of_plan (ctx : Ctx.t) (plan : Kernel.plan) =
  let of_block label mult =
    let dfg = Ctx.dfg ctx label in
    let iface i = Kernel.plan_iface plan label i in
    let sched = Schedule.run ~sp_banks:2 dfg ~iface in
    let nodes = ref [] in
    Array.iteri
      (fun i instr ->
        match Ir.Instr.unit_kind instr with
        | Some k ->
          for _ = 1 to mult do
            nodes :=
              { n_kind = k; n_level = sched.Schedule.issue_cycle.(i) }
              :: !nodes
          done
        | None -> ())
      dfg.Dfg.instrs;
    !nodes
  in
  List.concat_map (fun label -> of_block label 1) plan.Kernel.p_seq_blocks
  @ List.concat_map
      (fun (_, body, u) -> of_block body u)
      plan.Kernel.p_pipelined

let of_kernel ctx region ?beta config =
  Option.map (of_plan ctx) (Kernel.plan ctx region ?beta config)

type pairing = {
  n_shared : int;
  n_only_a : int;
  n_only_b : int;
  saved_area : float;  (* net gain from sharing (>= 0) *)
  merged : node list;  (* datapath of the merged accelerator *)
}

(* Cost of sharing one unit: two operand multiplexers plus configuration
   bits, plus balance registers when the two uses sit at different
   pipeline levels. *)
let share_overhead ~level_gap =
  (2.0 *. Tech.mux_area_per_input)
  +. Tech.config_reg_area
  +. (float_of_int level_gap *. Tech.register_area *. 0.5)

(* Greedy level-aware matching per unit kind: sort both sides by level
   and pair in order, so units serving similar pipeline stages share.
   Matches whose overhead exceeds the unit's area are dropped. *)
let pair a_nodes b_nodes =
  let by_kind nodes k =
    List.filter (fun n -> n.n_kind = k) nodes
    |> List.sort (fun x y -> compare x.n_level y.n_level)
  in
  let shared = ref 0 in
  let saved = ref 0.0 in
  let merged = ref [] in
  let only_a = ref 0 and only_b = ref 0 in
  List.iter
    (fun k ->
      let xs = by_kind a_nodes k and ys = by_kind b_nodes k in
      let rec zip xs ys =
        match xs, ys with
        | x :: xs', y :: ys' ->
          let gap = abs (x.n_level - y.n_level) in
          let gain = Tech.area k -. share_overhead ~level_gap:gap in
          if gain > 0.0 then begin
            incr shared;
            saved := !saved +. gain;
            merged := { n_kind = k; n_level = min x.n_level y.n_level } :: !merged
          end
          else begin
            (* too far apart to be worth muxing: keep both units *)
            merged := x :: y :: !merged
          end;
          zip xs' ys'
        | rest, [] ->
          only_a := !only_a + List.length rest;
          merged := rest @ !merged
        | [], rest ->
          only_b := !only_b + List.length rest;
          merged := rest @ !merged
      in
      zip xs ys)
    Ir.Op.all_unit_kinds;
  { n_shared = !shared;
    n_only_a = !only_a;
    n_only_b = !only_b;
    saved_area = !saved;
    merged = !merged }

let area nodes =
  List.fold_left (fun acc n -> acc +. Tech.area n.n_kind) 0.0 nodes

let counts nodes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let prev = try Hashtbl.find tbl n.n_kind with Not_found -> 0 in
      Hashtbl.replace tbl n.n_kind (prev + 1))
    nodes;
  List.filter_map
    (fun k ->
      match Hashtbl.find_opt tbl k with
      | Some c -> Some (k, c)
      | None -> None)
    Ir.Op.all_unit_kinds
