(** Technology characterization: delay/area of datapath units, data-access
    interface parameters, control overheads, and the CVA6 normalization
    constant.

    Replaces the paper's OpenROAD + Nangate45 characterization runs with a
    fixed table (see DESIGN.md for the substitution rationale). *)

val clock_ns : float
val accel_freq_hz : float

val delay_ns : Cayman_ir.Op.unit_kind -> float
val area : Cayman_ir.Op.unit_kind -> float

(** [ceil (delay / clock)] — units faster than the clock take 1 cycle and
    may chain. *)
val latency_cycles : Cayman_ir.Op.unit_kind -> int

(** Coupled interface: plain load/store units; the accelerator stalls for
    the full memory round trip and accesses serialize on a shared port. *)

val coupled_load_latency : int
val coupled_store_latency : int
val coupled_load_occupancy : int
val coupled_store_occupancy : int
val coupled_ports : int
val coupled_unit_area : float

(** Decoupled interface: address-generation unit + FIFO per stream. *)

val decoupled_load_latency : int
val decoupled_store_latency : int
val decoupled_unit_area : float

(** Scratchpad interface: local buffer, banked under unrolling, with DMA
    transfers before/after kernel execution. *)

val scratchpad_access_latency : int
val scratchpad_word_area : float
val scratchpad_bank_overhead : float
val dma_engine_area : float
val dma_words_per_cycle : int

val register_area : float
val fsm_state_area : float
val block_ctrl_area : float
val pipeline_stage_area : float
val accel_wrapper_area : float
val mux_area_per_input : float
val config_reg_area : float
val invoke_overhead_cycles : int
val seq_ctrl_cycles : int

val cva6_tile_area : float
val ratio_to_cva6 : float -> float
