module Ir = Cayman_ir

type t = {
  block : Ir.Block.t;
  instrs : Ir.Instr.t array;
  preds : int list array;
  live_in_uses : (string, int list) Hashtbl.t;
  last_def : (string, int) Hashtbl.t;
}

(* Build the data-flow graph of one block: data dependencies through
   registers plus conservative ordering between same-base memory accesses
   (store-load, load-store and store-store must keep program order;
   independent loads may reorder). *)
let of_block (b : Ir.Block.t) =
  let instrs = Array.of_list b.Ir.Block.instrs in
  let n = Array.length instrs in
  let preds = Array.make n [] in
  let live_in_uses = Hashtbl.create 8 in
  let last_def = Hashtbl.create 16 in
  let last_store : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let accesses_since_store : (string, int list) Hashtbl.t = Hashtbl.create 4 in
  let add_pred i p = if p <> i then preds.(i) <- p :: preds.(i) in
  Array.iteri
    (fun i instr ->
      List.iter
        (fun (r : Ir.Instr.reg) ->
          match Hashtbl.find_opt last_def r.Ir.Instr.id with
          | Some d -> add_pred i d
          | None ->
            let prev =
              try Hashtbl.find live_in_uses r.Ir.Instr.id with Not_found -> []
            in
            Hashtbl.replace live_in_uses r.Ir.Instr.id (i :: prev))
        (Ir.Instr.uses instr);
      (match Ir.Instr.mem_ref_of instr with
       | Some m ->
         let base = m.Ir.Instr.base in
         (match instr with
          | Ir.Instr.Store _ ->
            (* A store waits for every same-base access since the previous
               store, and for the previous store itself. *)
            (match Hashtbl.find_opt last_store base with
             | Some s -> add_pred i s
             | None -> ());
            List.iter (add_pred i)
              (try Hashtbl.find accesses_since_store base with Not_found -> []);
            Hashtbl.replace last_store base i;
            Hashtbl.replace accesses_since_store base []
          | Ir.Instr.Load _ ->
            (match Hashtbl.find_opt last_store base with
             | Some s -> add_pred i s
             | None -> ());
            let prev =
              try Hashtbl.find accesses_since_store base with Not_found -> []
            in
            Hashtbl.replace accesses_since_store base (i :: prev)
          | Ir.Instr.Assign _ | Ir.Instr.Unary _ | Ir.Instr.Binary _
          | Ir.Instr.Compare _ | Ir.Instr.Select _ | Ir.Instr.Call _ -> ())
       | None -> ());
      (match Ir.Instr.def instr with
       | Some r -> Hashtbl.replace last_def r.Ir.Instr.id i
       | None -> ()))
    instrs;
  { block = b; instrs; preds; live_in_uses; last_def }

let size t = Array.length t.instrs

let mem_nodes t =
  let acc = ref [] in
  Array.iteri
    (fun i instr -> if Ir.Instr.is_mem instr then acc := i :: !acc)
    t.instrs;
  List.rev !acc

let has_call t = Array.exists Ir.Instr.is_call t.instrs

(* Multiset of datapath unit kinds used by the block's compute nodes. *)
let unit_counts t =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun instr ->
      match Ir.Instr.unit_kind instr with
      | Some k ->
        let prev = try Hashtbl.find tbl k with Not_found -> 0 in
        Hashtbl.replace tbl k (prev + 1)
      | None -> ())
    t.instrs;
  List.filter_map
    (fun k ->
      match Hashtbl.find_opt tbl k with
      | Some c -> Some (k, c)
      | None -> None)
    Ir.Op.all_unit_kinds

(* Longest path (in summed per-node weights) from any node in [sources] to
   [sink], both inclusive; [None] if no path exists. *)
let longest_path t ~weight ~sources ~sink =
  let n = size t in
  if sink >= n then None
  else begin
    let src = Array.make n false in
    List.iter (fun s -> if s < n then src.(s) <- true) sources;
    let dist = Array.make n neg_infinity in
    for i = 0 to n - 1 do
      let best_pred =
        List.fold_left
          (fun acc p -> if dist.(p) > acc then dist.(p) else acc)
          neg_infinity t.preds.(i)
      in
      if src.(i) then
        dist.(i) <- Float.max (weight i) (best_pred +. weight i)
      else if best_pred > neg_infinity then dist.(i) <- best_pred +. weight i
    done;
    if dist.(sink) > neg_infinity then Some dist.(sink) else None
  end

(* Nodes that consume the live-in register [rid]. *)
let uses_of_live_in t rid =
  try Hashtbl.find t.live_in_uses rid with Not_found -> []

let def_of t rid = Hashtbl.find_opt t.last_def rid
