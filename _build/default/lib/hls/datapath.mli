(** Datapath-level merging support: operation nodes of a kernel's
    synthesized datapath (with pipeline levels) and the greedy
    mux-inserting pairing of Section III-E. *)

type node = {
  n_kind : Cayman_ir.Op.unit_kind;
  n_level : int;  (** ASAP issue cycle within its block *)
}

(** Compute nodes of a synthesis plan (unrolled bodies replicated). *)
val of_plan : Ctx.t -> Kernel.plan -> node list

val of_kernel :
  Ctx.t ->
  Cayman_analysis.Region.t ->
  ?beta:float ->
  Kernel.config ->
  node list option

type pairing = {
  n_shared : int;  (** unit instances kept once instead of twice *)
  n_only_a : int;
  n_only_b : int;
  saved_area : float;
  merged : node list;  (** datapath of the merged accelerator *)
}

(** Overhead of sharing one unit between two uses [level_gap] pipeline
    stages apart (muxes + configuration bits + balance registers). *)
val share_overhead : level_gap:int -> float

(** Greedy level-aware matching per unit kind. *)
val pair : node list -> node list -> pairing

val area : node list -> float
val counts : node list -> (Cayman_ir.Op.unit_kind * int) list
