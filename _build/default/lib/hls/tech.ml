module Ir = Cayman_ir

(* Nangate45-flavoured characterization: combinational delay in ns and
   area in um^2 per datapath unit. The numbers were chosen to be plausible
   for a 45 nm standard-cell flow; only their relative magnitudes matter
   for the evaluation (see DESIGN.md). *)

let clock_ns = 2.0 (* 500 MHz accelerator clock, as in the paper *)
let accel_freq_hz = 1.0e9 /. clock_ns

let delay_ns (k : Ir.Op.unit_kind) =
  match k with
  | Ir.Op.U_int_add -> 0.9
  | Ir.Op.U_int_mul -> 2.6
  | Ir.Op.U_int_div -> 11.0
  | Ir.Op.U_int_logic -> 0.3
  | Ir.Op.U_int_shift -> 0.5
  | Ir.Op.U_int_cmp -> 0.7
  | Ir.Op.U_float_add -> 3.4
  | Ir.Op.U_float_mul -> 3.8
  | Ir.Op.U_float_div -> 13.5
  | Ir.Op.U_float_cmp -> 1.6
  | Ir.Op.U_convert -> 2.2
  | Ir.Op.U_select -> 0.4

let area (k : Ir.Op.unit_kind) =
  match k with
  | Ir.Op.U_int_add -> 180.0
  | Ir.Op.U_int_mul -> 2200.0
  | Ir.Op.U_int_div -> 4500.0
  | Ir.Op.U_int_logic -> 90.0
  | Ir.Op.U_int_shift -> 260.0
  | Ir.Op.U_int_cmp -> 140.0
  | Ir.Op.U_float_add -> 3800.0
  | Ir.Op.U_float_mul -> 5200.0
  | Ir.Op.U_float_div -> 9800.0
  | Ir.Op.U_float_cmp -> 900.0
  | Ir.Op.U_convert -> 1500.0
  | Ir.Op.U_select -> 120.0

(* Cycle latency of a unit at the accelerator clock; sub-cycle units may
   chain, multi-cycle units are pipelined internally. *)
let latency_cycles k =
  int_of_float (ceil (delay_ns k /. clock_ns))

(* --- data access interfaces (Fig. 3 of the paper) --- *)

(* Coupled: a load/store unit talking to the memory system; the
   accelerator stalls for the full round trip. *)
let coupled_load_latency = 5
let coupled_store_latency = 2
let coupled_load_occupancy = 2 (* port busy cycles per access *)
let coupled_store_occupancy = 1
let coupled_ports = 1
let coupled_unit_area = 950.0

(* Decoupled: an AGU computes stream addresses ahead of the datapath and a
   FIFO hides the memory latency. *)
let decoupled_load_latency = 2
let decoupled_store_latency = 1
let decoupled_unit_area = 2750.0 (* AGU + FIFO per stream *)

(* Scratchpad: local buffer + DMA bulk transfer around kernel execution. *)
let scratchpad_access_latency = 1
let scratchpad_word_area = 45.0
let scratchpad_bank_overhead = 600.0
let dma_engine_area = 5200.0
let dma_words_per_cycle = 4

(* --- control and structural overheads --- *)

let register_area = 250.0 (* one 32-bit register *)
let fsm_state_area = 60.0
let block_ctrl_area = 220.0 (* per synthesized basic block *)
let pipeline_stage_area = 480.0 (* pipeline registers per stage *)
let accel_wrapper_area = 2600.0 (* offload/sync logic per accelerator *)
let mux_area_per_input = 110.0 (* merging: 32-bit 2:1 mux slice *)
let config_reg_area = 130.0 (* merging: reconfiguration bit registers *)

(* Offload synchronization: cycles (at the accelerator clock) to trigger
   the accelerator and transfer scalar arguments/results. *)
let invoke_overhead_cycles = 12

(* Per-block sequential control overhead (state transition). *)
let seq_ctrl_cycles = 1

(* Area of the CVA6 RISC-V tile used for normalization (um^2, 45 nm-ish,
   core + L1; the paper reports accelerator area as a ratio to this). *)
let cva6_tile_area = 1_200_000.0

let ratio_to_cva6 a = a /. cva6_tile_area
