type kind =
  | Coupled
  | Decoupled
  | Scratchpad
  | Scan

let to_string = function
  | Coupled -> "coupled"
  | Decoupled -> "decoupled"
  | Scratchpad -> "scratchpad"
  | Scan -> "scan"

let load_latency = function
  | Coupled -> Tech.coupled_load_latency
  | Decoupled -> Tech.decoupled_load_latency
  | Scratchpad -> Tech.scratchpad_access_latency
  | Scan -> 6

let store_latency = function
  | Coupled -> Tech.coupled_store_latency
  | Decoupled -> Tech.decoupled_store_latency
  | Scratchpad -> Tech.scratchpad_access_latency
  | Scan -> 3

(* Port occupancy per access for interfaces with a shared resource; the
   decoupled interface streams independently and the scratchpad is banked,
   so only coupled (and scan-chain) accesses serialize on the single
   memory port. *)
let load_occupancy = function
  | Coupled -> Tech.coupled_load_occupancy
  | Decoupled -> 0
  | Scratchpad -> 0
  | Scan -> 2

let store_occupancy = function
  | Coupled -> Tech.coupled_store_occupancy
  | Decoupled -> 0
  | Scratchpad -> 0
  | Scan -> 1

(* Area of the interface hardware attached to one access operation (the
   scratchpad buffer itself is accounted per array, not per access). *)
let per_access_area = function
  | Coupled -> Tech.coupled_unit_area
  | Decoupled -> Tech.decoupled_unit_area
  | Scratchpad -> 0.0
  | Scan -> 420.0

(* Shared-port interfaces serialize on one memory port. *)
let uses_shared_port = function
  | Coupled | Scan -> true
  | Decoupled | Scratchpad -> false
