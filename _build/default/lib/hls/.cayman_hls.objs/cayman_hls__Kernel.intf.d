lib/hls/kernel.mli: Cayman_analysis Cayman_ir Ctx Iface
