lib/hls/iface.mli:
