lib/hls/dfg.mli: Cayman_ir Hashtbl
