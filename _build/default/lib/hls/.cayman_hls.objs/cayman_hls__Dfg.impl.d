lib/hls/dfg.ml: Array Cayman_ir Float Hashtbl List
