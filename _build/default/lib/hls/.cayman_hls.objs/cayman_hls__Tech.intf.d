lib/hls/tech.mli: Cayman_ir
