lib/hls/pipeline.ml: Array Cayman_analysis Cayman_ir Ctx Dfg Iface List Option String Tech
