lib/hls/iface.ml: Tech
