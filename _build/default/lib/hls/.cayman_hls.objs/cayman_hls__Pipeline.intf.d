lib/hls/pipeline.mli: Cayman_analysis Ctx Dfg Iface
