lib/hls/tech.ml: Cayman_ir
