lib/hls/datapath.mli: Cayman_analysis Cayman_ir Ctx Kernel
