lib/hls/netlist.mli: Cayman_analysis Cayman_ir Ctx Kernel
