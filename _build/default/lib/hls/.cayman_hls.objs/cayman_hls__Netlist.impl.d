lib/hls/netlist.ml: Array Buffer Cayman_analysis Cayman_ir Ctx Dfg Hashtbl Iface Int32 Kernel List Option Printf String
