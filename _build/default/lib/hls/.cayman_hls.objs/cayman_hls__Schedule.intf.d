lib/hls/schedule.mli: Dfg Iface
