lib/hls/schedule.ml: Array Cayman_ir Dfg Float Iface List Tech
