lib/hls/ctx.ml: Cayman_analysis Cayman_ir Cayman_sim Dfg Float Hashtbl List
