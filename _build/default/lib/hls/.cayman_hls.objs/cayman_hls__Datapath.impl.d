lib/hls/datapath.ml: Array Cayman_analysis Cayman_ir Ctx Dfg Hashtbl Kernel List Option Schedule Tech
