lib/hls/dse.mli: Cayman_analysis Ctx Kernel
