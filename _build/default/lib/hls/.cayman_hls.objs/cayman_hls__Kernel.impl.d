lib/hls/kernel.ml: Array Cayman_analysis Cayman_ir Cayman_sim Ctx Dfg Hashtbl Iface List Option Pipeline Printf Schedule String Tech
