lib/hls/ctx.mli: Cayman_analysis Cayman_ir Cayman_sim Dfg Hashtbl
