lib/hls/dse.ml: Cayman_analysis Ctx Hashtbl Kernel List
