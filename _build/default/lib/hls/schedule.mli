(** Resource-constrained ASAP scheduling of block DFGs with operator
    chaining, at the accelerator clock of {!Tech.clock_ns}. *)

type t = {
  length : int;  (** schedule length in cycles (>= 1) *)
  issue_cycle : int array;
  finish_cycle : int array;
}

(** [run dfg ~iface] schedules the block; [iface i] gives the data-access
    interface of memory node [i]. [sp_banks] is the number of scratchpad
    banks available for parallel access (memory partitioning). *)
val run : ?sp_banks:int -> Dfg.t -> iface:(int -> Iface.kind) -> t

val block_latency : ?sp_banks:int -> Dfg.t -> iface:(int -> Iface.kind) -> int
