(** Processor-accelerator data access interfaces.

    [Coupled], [Decoupled] and [Scratchpad] are the paper's three
    specialized interfaces (Fig. 3). [Scan] models the high-latency,
    low-bandwidth scan-chain interface of conservation cores / QsCores,
    used only by the baseline. *)

type kind =
  | Coupled
  | Decoupled
  | Scratchpad
  | Scan

val to_string : kind -> string
val load_latency : kind -> int
val store_latency : kind -> int
val load_occupancy : kind -> int
val store_occupancy : kind -> int
val per_access_area : kind -> float
val uses_shared_port : kind -> bool
