lib/baselines/novia.mli: Cayman_analysis Cayman_hls Core
