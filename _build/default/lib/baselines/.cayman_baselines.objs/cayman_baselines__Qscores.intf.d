lib/baselines/qscores.mli: Cayman_hls Core
