lib/baselines/novia.ml: Array Cayman_analysis Cayman_hls Cayman_ir Cayman_sim Core Float Hashtbl List
