lib/baselines/qscores.ml: Cayman_analysis Cayman_hls Core
