(** NOVIA-style custom functional unit baseline: accelerates basic-block
    data-flow graphs only (no control flow, no memory access); operands
    move through a scalar register-file interface. *)

val estimate_bb :
  Cayman_hls.Ctx.t ->
  Cayman_analysis.Region.t ->
  Cayman_hls.Kernel.point option

(** Plug-in for {!Core.Select.select}. *)
val gen : Core.Select.accel_gen
