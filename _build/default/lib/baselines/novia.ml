module Ir = Cayman_ir
module An = Cayman_analysis
module Sim = Cayman_sim
module Hls = Cayman_hls

(* NOVIA-style custom-functional-unit synthesis (Trilla et al., MICRO'21):
   inline accelerators for data-flow graphs only. Candidates are basic
   blocks; control flow is never offloaded and memory accesses stay on the
   host — the CFU receives scalar operands through the register file and
   returns results. Its win comes from operator chaining; its limit is
   exactly what Table I of the Cayman paper lists. *)

let cfu_ctrl_area = 320.0
let operands_per_cycle = 2

(* Longest combinational path (ns) over the compute nodes of a DFG. *)
let compute_depth_ns (dfg : Hls.Dfg.t) =
  let n = Hls.Dfg.size dfg in
  let dist = Array.make n 0.0 in
  let best = ref 0.0 in
  for i = 0 to n - 1 do
    let w =
      match Ir.Instr.unit_kind dfg.Hls.Dfg.instrs.(i) with
      | Some k -> Hls.Tech.delay_ns k
      | None -> 0.0
    in
    let from_preds =
      List.fold_left
        (fun acc p -> Float.max acc dist.(p))
        0.0 dfg.Hls.Dfg.preds.(i)
    in
    dist.(i) <- from_preds +. w;
    if dist.(i) > !best then best := dist.(i)
  done;
  !best

let estimate_bb (ctx : Hls.Ctx.t) (r : An.Region.t) =
  let label = r.An.Region.entry in
  let dfg = Hls.Ctx.dfg ctx label in
  if Hls.Dfg.has_call dfg then None
  else begin
    let units = Hls.Dfg.unit_counts dfg in
    if units = [] then None
    else begin
      let execs = Hls.Ctx.block_exec ctx label in
      if execs <= 0 then None
      else begin
        let host_compute =
          Array.fold_left
            (fun acc i ->
              match Ir.Instr.unit_kind i with
              | Some _ -> acc + Sim.Cpu_model.instr_cycles i
              | None -> acc)
            0 dfg.Hls.Dfg.instrs
        in
        let n_inputs = Hashtbl.length dfg.Hls.Dfg.live_in_uses in
        let io = n_inputs + 1 in
        let transfer = (io + operands_per_cycle - 1) / operands_per_cycle in
        let depth =
          max 1
            (int_of_float (ceil (compute_depth_ns dfg /. Hls.Tech.clock_ns)))
        in
        let per_exec = transfer + depth in
        let area =
          List.fold_left
            (fun acc (k, c) -> acc +. (float_of_int c *. Hls.Tech.area k))
            0.0 units
          +. (float_of_int io *. Hls.Tech.register_area)
          +. cfu_ctrl_area
        in
        Some
          { Hls.Kernel.config =
              { Hls.Kernel.unroll = 1; pipeline = false;
                mode = Hls.Kernel.Heuristic };
            accel_cycles = float_of_int (execs * per_exec);
            cpu_cycles = execs * host_compute;
            invocations = execs;
            area;
            n_seq_blocks = 1;
            n_pipelined = 0;
            ifaces = Hls.Kernel.no_ifaces;
            units;
            sp_words = 0;
            n_regs = io }
      end
    end
  end

(* Selection plug-in: DFG (basic-block) candidates only. *)
let gen : Core.Select.accel_gen =
 fun ctx region ->
  match region.An.Region.kind with
  | An.Region.Basic_block ->
    (match estimate_bb ctx region with
     | Some p -> [ p ]
     | None -> [])
  | An.Region.Whole_function | An.Region.Loop_region | An.Region.Cond_region ->
    []
