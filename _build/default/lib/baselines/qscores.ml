module An = Cayman_analysis
module Hls = Cayman_hls

(* QsCores-style off-core accelerator synthesis (Venkatesh et al.,
   MICRO'11): program regions with control flow and memory access are
   supported, but the control implementation is strictly sequential (no
   pipelining or unrolling) and data moves through a high-latency,
   low-bandwidth scan-chain interface. *)

let config =
  { Hls.Kernel.unroll = 1; pipeline = false; mode = Hls.Kernel.Scan_only }

let gen : Core.Select.accel_gen =
 fun ctx region ->
  match region.An.Region.kind with
  | An.Region.Whole_function -> []
  | An.Region.Basic_block | An.Region.Loop_region | An.Region.Cond_region ->
    Hls.Kernel.estimate_all ctx region [ config ]
