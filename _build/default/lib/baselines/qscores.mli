(** QsCores-style off-core accelerator baseline: sequential control flow
    and a slow scan-chain data interface. *)

val config : Cayman_hls.Kernel.config

(** Plug-in for {!Core.Select.select}. *)
val gen : Core.Select.accel_gen
