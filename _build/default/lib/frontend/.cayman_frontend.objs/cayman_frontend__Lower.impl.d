lib/frontend/lower.ml: Ast Cayman_ir Format Hashtbl List Option Parser String
