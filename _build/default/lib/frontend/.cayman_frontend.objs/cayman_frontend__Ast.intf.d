lib/frontend/ast.mli:
