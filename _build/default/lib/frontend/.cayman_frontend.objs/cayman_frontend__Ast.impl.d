lib/frontend/ast.ml:
