lib/frontend/lower.mli: Ast Cayman_ir
