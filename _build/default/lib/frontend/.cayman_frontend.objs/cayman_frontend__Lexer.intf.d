lib/frontend/lexer.mli:
