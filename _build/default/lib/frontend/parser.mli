(** Recursive-descent parser for MiniC. *)

exception Error of { line : int; message : string }

(** Parse a MiniC source string into an AST.
    @raise Error on lexical or syntax errors, with the offending line. *)
val parse : string -> Ast.program
