(** Hand-written lexer for MiniC. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_INT
  | KW_FLOAT
  | KW_VOID
  | KW_CONST
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PLUS_PLUS
  | MINUS_MINUS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | AND_AND
  | OR_OR
  | BANG
  | AMP
  | PIPE
  | CARET
  | SHL
  | SHR
  | EOF

exception Error of { line : int; message : string }

val token_to_string : token -> string

(** Tokenize a source string into [(token, line)] pairs; the result always
    ends with [EOF]. Supports [//] and [/* */] comments.
    @raise Error on malformed input. *)
val tokenize : string -> (token * int) list
