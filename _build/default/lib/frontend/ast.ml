type ty =
  | Tint
  | Tfloat
  | Tvoid

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Bmod
  | Beq
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge
  | Band
  | Bor
  | Bshl
  | Bshr
  | Bbit_and
  | Bbit_or
  | Bbit_xor

type unop =
  | Uneg
  | Unot

type expr = { desc : expr_desc; line : int }

and expr_desc =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr list
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list
  | Cast of ty * expr

type assign_op =
  | A_set
  | A_add
  | A_sub
  | A_mul
  | A_div

type lvalue =
  | L_var of string
  | L_index of string * expr list

type stmt = { sdesc : stmt_desc; sline : int }

and stmt_desc =
  | S_block of stmt list
  | S_if of expr * stmt * stmt option
  | S_while of string option * expr * stmt
  | S_for of string option * stmt option * expr option * stmt option * stmt
  | S_return of expr option
  | S_decl of ty * string * expr option
  | S_assign of lvalue * assign_op * expr
  | S_expr of expr
  | S_break
  | S_continue

type param = { pty : ty; pname : string }

type item =
  | Global of { ty : ty; name : string; dims : expr list; line : int }
  | Const of { name : string; value : expr; line : int }
  | Func of {
      ret : ty;
      name : string;
      params : param list;
      body : stmt list;
      line : int;
    }

type program = item list

let ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tvoid -> "void"
