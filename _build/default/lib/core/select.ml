module Hls = Cayman_hls
module An = Cayman_analysis
module Sim = Cayman_sim

(* Generator of accelerator design points for one region: Cayman's full
   model, its coupled-only ablation, and the baselines all plug in here,
   so every method shares the same dynamic program. *)
type accel_gen = Hls.Ctx.t -> An.Region.t -> Hls.Kernel.point list

type params = {
  alpha : float;
  prune_threshold : float;
}

let default_params = { alpha = 1.08; prune_threshold = 5e-4 }

type stats = {
  visited : int;
  pruned : int;
  points_evaluated : int;
}

(* Algorithm 1: bottom-up dynamic programming over the wPST. [F v] is the
   filtered Pareto sequence of solutions accelerating kernels from [v]'s
   subtree; sibling sequences combine with ⊗ and a ctrl-flow region may
   instead be accelerated whole via [gen]. *)
let select ?(params = default_params) ~(gen : accel_gen)
    (ctxs : (string, Hls.Ctx.t) Hashtbl.t) (wpst : An.Wpst.t)
    (profile : Sim.Profile.t) : Solution.t list * stats =
  let alpha = params.alpha in
  let total_cycles = float_of_int (Sim.Profile.total_cycles profile) in
  let prune_cycles = params.prune_threshold *. total_cycles in
  let visited = ref 0 in
  let pruned = ref 0 in
  let points = ref 0 in
  let rec dp (ctx : Hls.Ctx.t) (r : An.Region.t) : Solution.t list =
    incr visited;
    let cycles = Sim.Profile.region_cycles ctx.Hls.Ctx.func profile r in
    if float_of_int cycles < prune_cycles then begin
      incr pruned;
      [ Solution.empty ]
    end
    else begin
      let own =
        match r.An.Region.kind with
        | An.Region.Whole_function -> []
        | An.Region.Basic_block | An.Region.Loop_region | An.Region.Cond_region ->
          let pts = gen ctx r in
          points := !points + List.length pts;
          List.filter_map
            (fun p ->
              let a =
                Solution.accel_of_point ~func:ctx.Hls.Ctx.func.Cayman_ir.Func.name
                  ~region_id:r.An.Region.id ~region_name:(An.Region.name r) p
              in
              if a.Solution.a_saved > 0.0 then Some (Solution.of_accel a)
              else None)
            pts
      in
      let from_children =
        List.fold_left
          (fun acc c -> Solution.combine ~alpha acc (dp ctx c))
          [ Solution.empty ] r.An.Region.children
      in
      Solution.filter ~alpha (Solution.pareto (own @ from_children))
    end
  in
  let frontier =
    List.fold_left
      (fun acc (ft : An.Wpst.func_tree) ->
        match Hashtbl.find_opt ctxs ft.An.Wpst.fname with
        | Some ctx -> Solution.combine ~alpha acc (dp ctx ft.An.Wpst.root)
        | None -> acc)
      [ Solution.empty ] wpst.An.Wpst.funcs
  in
  frontier, { visited = !visited; pruned = !pruned; points_evaluated = !points }
