lib/core/solution.ml: Cayman_hls Float Format List
