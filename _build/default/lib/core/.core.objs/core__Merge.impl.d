lib/core/merge.ml: Array Cayman_hls Cayman_ir Float List Solution
