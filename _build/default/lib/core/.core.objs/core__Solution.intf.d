lib/core/solution.mli: Cayman_hls Format
