lib/core/cayman.ml: Cayman_analysis Cayman_frontend Cayman_hls Cayman_ir Cayman_sim Hashtbl Merge Select Solution Sys
