lib/core/merge.mli: Cayman_hls Cayman_ir Solution
