lib/core/cayman.mli: Cayman_analysis Cayman_hls Cayman_ir Cayman_sim Hashtbl Merge Select Solution
