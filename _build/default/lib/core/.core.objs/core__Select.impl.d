lib/core/select.ml: Cayman_analysis Cayman_hls Cayman_ir Cayman_sim Hashtbl List Solution
