lib/core/report.mli: Format Solution
