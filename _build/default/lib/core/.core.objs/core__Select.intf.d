lib/core/select.mli: Cayman_analysis Cayman_hls Cayman_sim Hashtbl Solution
