lib/core/report.ml: Cayman_hls Format List Solution
