module Hls = Cayman_hls

(* Aggregated configuration counters of a solution, matching Table II's
   columns: #SB, #PR, #C, #D, #S. *)
type totals = {
  sb : int;
  pr : int;
  c : int;
  d : int;
  s : int;
  n_accels : int;
}

let totals (sol : Solution.t) =
  List.fold_left
    (fun acc (a : Solution.accel) ->
      let p = a.Solution.a_point in
      { sb = acc.sb + p.Hls.Kernel.n_seq_blocks;
        pr = acc.pr + p.Hls.Kernel.n_pipelined;
        c = acc.c + p.Hls.Kernel.ifaces.Hls.Kernel.n_coupled;
        d = acc.d + p.Hls.Kernel.ifaces.Hls.Kernel.n_decoupled;
        s = acc.s + p.Hls.Kernel.ifaces.Hls.Kernel.n_scratchpad;
        n_accels = acc.n_accels + 1 })
    { sb = 0; pr = 0; c = 0; d = 0; s = 0; n_accels = 0 }
    sol.Solution.accels

let area_ratio (sol : Solution.t) = Hls.Tech.ratio_to_cva6 sol.Solution.area

(* Pretty-print one Pareto frontier as (area-ratio, speedup) points. *)
let pp_frontier ~t_all fmt frontier =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i s ->
      if i > 0 then Format.pp_print_cut fmt ();
      Format.fprintf fmt "area=%.4f speedup=%.3f (%d accels)"
        (area_ratio s)
        (Solution.speedup ~t_all s)
        (List.length s.Solution.accels))
    frontier;
  Format.fprintf fmt "@]"
