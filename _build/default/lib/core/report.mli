(** Reporting helpers: Table II column aggregation and frontier dumps. *)

type totals = {
  sb : int;  (** sequential basic blocks *)
  pr : int;  (** pipelined regions *)
  c : int;  (** coupled interfaces *)
  d : int;  (** decoupled interfaces *)
  s : int;  (** scratchpad interfaces *)
  n_accels : int;
}

val totals : Solution.t -> totals
val area_ratio : Solution.t -> float
val pp_frontier : t_all:float -> Format.formatter -> Solution.t list -> unit
