(* Command-line interface to the Cayman flow.

   cayman_cli run --bench 3mm --budget 0.25
   cayman_cli run --file app.mc --budget 0.65 --mode coupled-only
   cayman_cli dump --bench atax         # IR + wPST + profile summary
   cayman_cli list                      # available suite benchmarks
*)

module Ir = Cayman_ir
module An = Cayman_analysis
module Sim = Cayman_sim
module Hls = Cayman_hls
module Suite = Cayman_suites.Suite

open Cmdliner

let load_program ~bench ~file =
  match bench, file with
  | Some name, None ->
    (match Suite.find name with
     | Some b -> Ok (Suite.compile b)
     | None ->
       Error (Printf.sprintf "unknown benchmark %s (try the list command)" name))
  | None, Some path ->
    (try
       let ic = open_in path in
       let n = in_channel_length ic in
       let src = really_input_string ic n in
       close_in ic;
       Ok (Cayman_frontend.Lower.compile src)
     with
     | Sys_error m -> Error m
     | Cayman_frontend.Diag.Error d ->
       Error (Printf.sprintf "%s: %s" path (Cayman_frontend.Diag.to_string d)))
  | Some _, Some _ -> Error "use either --bench or --file, not both"
  | None, None -> Error "one of --bench or --file is required"

let bench_arg =
  let doc = "Suite benchmark name (see the list command)." in
  Arg.(value & opt (some string) None & info [ "b"; "bench" ] ~doc)

let file_arg =
  let doc = "MiniC source file to compile and accelerate." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~doc)

let budget_arg =
  let doc = "Area budget as a fraction of the CVA6 tile area." in
  Arg.(value & opt float 0.25 & info [ "budget" ] ~doc)

let mode_arg =
  let doc = "Accelerator model: full, coupled-only, novia, qscores." in
  Arg.(value & opt string "full" & info [ "mode" ] ~doc)

let alpha_arg =
  let doc = "Pareto filter spacing ratio (Algorithm 1's alpha)." in
  Arg.(value & opt float 1.08 & info [ "alpha" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for parallel evaluation (0 = auto: $(b,CAYMAN_JOBS) \
     or the recommended domain count). Results are identical for every \
     value."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~doc ~docv:"N")

(* Install an explicit --jobs as the process-wide default so every
   engine entry point (selection, merging sweeps) sees it. *)
let apply_jobs jobs = if jobs > 0 then Engine.Config.set_jobs jobs

let fuel_arg =
  let doc =
    "Interpreter fuel budget in executed instructions (0 = default: \
     $(b,CAYMAN_FUEL) or a finite built-in budget). Runs that exhaust \
     it stop with a diagnostic instead of hanging."
  in
  Arg.(value & opt int 0 & info [ "fuel" ] ~doc ~docv:"N")

let apply_fuel fuel = if fuel > 0 then Engine.Config.set_fuel fuel

let interp_arg =
  let doc =
    "Interpreter engine: $(docv) is $(b,staged) (closure-compiled fast \
     path, the default) or $(b,reference) (tree-walking ground truth). \
     Defaults to $(b,CAYMAN_INTERP) when unset. Every observable output \
     — profiles, selections, co-simulation verdicts — is byte-identical \
     between the two."
  in
  Arg.(
    value
    & opt
        (some
           (enum
              [ "staged", Sim.Interp.Staged;
                "reference", Sim.Interp.Reference ]))
        None
    & info [ "interp" ] ~doc ~docv:"ENGINE")

(* Like --jobs/--fuel: an explicit flag becomes the process-wide
   override so every interpreter entry point (profiling, cosim golden
   runs, fault campaigns) sees the same engine. *)
let apply_interp = function
  | None -> ()
  | Some e -> Sim.Interp.set_engine e

let cache_dir_arg =
  let doc =
    "Memoization cache directory (default: $(b,CAYMAN_CACHE_DIR), else \
     ~/.cache/cayman). Not the simulated data cache: see the \
     ablation-cache bench target for that."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~doc ~docv:"DIR")

let no_cache_arg =
  let doc =
    "Disable the on-disk memoization cache for this run (results are \
     bit-identical either way, just slower)."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

(* The library default is cache-off; the CLI turns it on after flag
   parsing. Fault campaigns force recomputation internally whatever the
   ambient state (see Fault.Campaign). *)
let apply_cache cache_dir no_cache =
  if no_cache then Memo.Store.disable ()
  else Memo.Store.enable ?dir:cache_dir ()

(* Convert the documented pipeline exceptions into clean one-line
   diagnostics + exit 1; anything else is a genuine crash and should
   keep its backtrace. *)
let with_diagnostics f =
  try f () with
  | Cayman_sim.Interp.Out_of_fuel ->
    prerr_endline
      "cayman: interpreter ran out of fuel (raise --fuel or CAYMAN_FUEL)";
    1
  | Cayman_sim.Interp.Runtime_error m ->
    prerr_endline ("cayman: runtime error: " ^ m);
    1
  | Cayman_frontend.Diag.Error d ->
    prerr_endline ("cayman: " ^ Cayman_frontend.Diag.to_string d);
    1

let trace_arg =
  let doc =
    "Record a Chrome trace_event timeline of the whole run and write it \
     to $(docv) (load in Perfetto or chrome://tracing). Stdout is \
     unaffected; the confirmation goes to stderr."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

(* Arm tracing around a subcommand body and flush the timeline on the
   way out — including error exits, so partial runs are inspectable. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    Obs.Trace.set_enabled true;
    let flush () =
      Obs.Trace.set_enabled false;
      Obs.Trace.write_file path;
      let dropped = Obs.Trace.dropped () in
      if dropped > 0 then
        Printf.eprintf "wrote %s (%d spans dropped to ring overflow)\n%!"
          path dropped
      else Printf.eprintf "wrote %s\n%!" path
    in
    (match f () with
     | code -> flush (); code
     | exception e -> flush (); raise e)

(* The run/dump/cosim bodies live in Serve.Handlers, shared verbatim
   with the daemon: `cayman serve` replies are byte-identical to these
   subcommands' stdout by construction. *)
let gen_of_mode = Serve.Handlers.gen_of_mode

let run_cmd bench file budget mode alpha jobs fuel interp cache_dir no_cache trace =
  apply_jobs jobs;
  apply_fuel fuel;
  apply_interp interp;
  apply_cache cache_dir no_cache;
  with_trace trace @@ fun () ->
  with_diagnostics @@ fun () ->
  match load_program ~bench ~file with
  | Error m -> prerr_endline ("cayman: " ^ m); 1
  | Ok program ->
    (match Serve.Handlers.run_text ~budget ~mode ~alpha program with
     | Error m -> prerr_endline ("cayman: " ^ m); 1
     | Ok text -> print_string text; 0)

let dump_cmd bench file fuel interp cache_dir no_cache trace =
  apply_fuel fuel;
  apply_interp interp;
  apply_cache cache_dir no_cache;
  with_trace trace @@ fun () ->
  with_diagnostics @@ fun () ->
  match load_program ~bench ~file with
  | Error m -> prerr_endline ("cayman: " ^ m); 1
  | Ok program ->
    print_string (Serve.Handlers.dump_text program);
    0

let out_arg =
  let doc = "Output directory for generated Verilog." in
  Arg.(value & opt string "cayman_rtl" & info [ "o"; "out" ] ~doc)

let emit_cmd bench file budget out jobs fuel interp cache_dir no_cache trace =
  apply_jobs jobs;
  apply_fuel fuel;
  apply_interp interp;
  apply_cache cache_dir no_cache;
  with_trace trace @@ fun () ->
  with_diagnostics @@ fun () ->
  match load_program ~bench ~file with
  | Error m -> prerr_endline ("cayman: " ^ m); 1
  | Ok program ->
    let a = Core.Cayman.analyze program in
    let r = Core.Cayman.run ~mode:Hls.Kernel.Heuristic a in
    let s = Core.Cayman.best_under_ratio r ~budget_ratio:budget in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let write name contents =
      let oc = open_out (Filename.concat out name) in
      output_string oc contents;
      close_out oc
    in
    write "cayman_primitives.v" Hls.Netlist.primitives;
    let count = ref 0 in
    List.iter
      (fun (acc : Core.Solution.accel) ->
        match Hashtbl.find_opt a.Core.Cayman.ctxs acc.Core.Solution.a_func with
        | None -> ()
        | Some ctx ->
          let region =
            An.Wpst.region a.Core.Cayman.wpst
              { An.Wpst.vfunc = acc.Core.Solution.a_func;
                vid = acc.Core.Solution.a_region_id }
          in
          (match region with
           | None -> ()
           | Some region ->
             (match
                Hls.Netlist.of_kernel ctx region
                  acc.Core.Solution.a_point.Hls.Kernel.config
              with
              | Some n ->
                incr count;
                write (n.Hls.Netlist.module_name ^ ".v") n.Hls.Netlist.verilog;
                Printf.printf
                  "%-48s %4d units %3d mem %4d regs %3d states
"
                  (n.Hls.Netlist.module_name ^ ".v")
                  n.Hls.Netlist.stats.Hls.Netlist.n_compute
                  n.Hls.Netlist.stats.Hls.Netlist.n_mem
                  n.Hls.Netlist.stats.Hls.Netlist.n_regs
                  n.Hls.Netlist.stats.Hls.Netlist.n_states
              | None -> ())))
      s.Core.Solution.accels;
    (* merged (reusable) accelerators *)
    let m = Core.Cayman.merge a s in
    List.iteri
      (fun i (acc : Core.Merge.accel) ->
        if List.length acc.Core.Merge.regions >= 2 then begin
          let n = Core.Merge.netlist_of i acc in
          incr count;
          write (n.Hls.Netlist.module_name ^ ".v") n.Hls.Netlist.verilog;
          Printf.printf "%-48s reusable: %d FSMs, %d shared units\n"
            (n.Hls.Netlist.module_name ^ ".v")
            n.Hls.Netlist.stats.Hls.Netlist.n_states
            n.Hls.Netlist.stats.Hls.Netlist.n_compute
        end)
      m.Core.Merge.accels;
    Printf.printf "wrote %d netlists + primitives to %s/\n" !count out;
    0

let max_inv_arg =
  let doc =
    "Co-simulate at most $(docv) invocations per kernel (0 = all; capping \
     disables the cycle comparison)."
  in
  Arg.(value & opt int 0 & info [ "max-invocations" ] ~doc ~docv:"N")

(* Differential co-simulation (body shared with the daemon — see
   Serve.Handlers.cosim_text). *)
let cosim_cmd bench file budget mode jobs max_inv fuel interp cache_dir
    no_cache
    trace =
  apply_jobs jobs;
  apply_fuel fuel;
  apply_interp interp;
  apply_cache cache_dir no_cache;
  with_trace trace @@ fun () ->
  with_diagnostics @@ fun () ->
  match load_program ~bench ~file with
  | Error m -> prerr_endline ("cayman: " ^ m); 1
  | Ok program ->
    let max_invocations = if max_inv > 0 then Some max_inv else None in
    (match
       Serve.Handlers.cosim_text ?max_invocations ~budget ~mode program
     with
     | Error m -> prerr_endline ("cayman: " ^ m); 1
     | Ok (text, ok) -> print_string text; if ok then 0 else 1)

let graph_cmd bench file out cache_dir no_cache trace =
  apply_cache cache_dir no_cache;
  with_trace trace @@ fun () ->
  match load_program ~bench ~file with
  | Error m -> prerr_endline ("cayman: " ^ m); 1
  | Ok program ->
    let a = Core.Cayman.analyze program in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let write name contents =
      let oc = open_out (Filename.concat out name) in
      output_string oc contents;
      close_out oc
    in
    write "wpst.dot" (An.Dot.wpst a.Core.Cayman.wpst);
    List.iter
      (fun (f : Ir.Func.t) ->
        write (Printf.sprintf "cfg_%s.dot" f.Ir.Func.name) (An.Dot.cfg f))
      a.Core.Cayman.program.Ir.Program.funcs;
    Printf.printf "wrote wpst.dot + %d CFGs to %s/ (render with graphviz)\n"
      (List.length a.Core.Cayman.program.Ir.Program.funcs)
      out;
    0

let list_cmd () =
  List.iter
    (fun (b : Suite.benchmark) ->
      Printf.printf "%-28s %s\n" b.Suite.name b.Suite.suite)
    Suite.all;
  0

(* Run the full flow with tracing armed internally and report where the
   time and the work went: a per-span rollup plus every pipeline metric
   grouped by phase. *)
let stats_cmd bench file budget mode alpha jobs fuel interp cache_dir
    no_cache
    trace =
  apply_jobs jobs;
  apply_fuel fuel;
  apply_interp interp;
  apply_cache cache_dir no_cache;
  with_diagnostics @@ fun () ->
  match load_program ~bench ~file with
  | Error m -> prerr_endline ("cayman: " ^ m); 1
  | Ok program ->
    (match gen_of_mode mode with
     | Error m -> prerr_endline ("cayman: " ^ m); 1
     | Ok (gen, memo_key) ->
       Obs.Metrics.reset ();
       Obs.Trace.reset ();
       Obs.Trace.set_enabled true;
       let a = Core.Cayman.analyze program in
       let params = { Core.Select.default_params with Core.Select.alpha } in
       let frontier, _stats =
         Core.Select.select ~params ~memo_key ~gen a.Core.Cayman.ctxs
           a.Core.Cayman.wpst a.Core.Cayman.profile
       in
       let budget_area = budget *. Hls.Tech.cva6_tile_area in
       let s =
         match Core.Solution.best_under ~budget:budget_area frontier with
         | Some s -> s
         | None -> Core.Solution.empty
       in
       let (_ : Core.Merge.result) = Core.Cayman.merge a s in
       Obs.Trace.set_enabled false;
       (* spans: wall-clock rollup, heaviest first *)
       Printf.printf "%-28s %10s %12s\n" "span" "calls" "total ms";
       Printf.printf "%s\n" (String.make 52 '-');
       List.iter
         (fun (name, calls, total_s) ->
           Printf.printf "%-28s %10d %12.3f\n" name calls (1e3 *. total_s))
         (Obs.Trace.rollup ());
       let span_drops = Obs.Trace.dropped () in
       Printf.printf "spans dropped: %d\n" span_drops;
       if span_drops > 0 then
         Printf.printf
           "warning: trace ring buffers overflowed; the rollup is missing \
            the %d oldest spans\n"
           span_drops;
       (* metrics: schedule-independent counters/histograms plus gauges,
          grouped by the phase prefix of the metric name *)
       print_newline ();
       Printf.printf "%-36s %16s\n" "metric" "value";
       let last_phase = ref "" in
       List.iter
         (fun (name, snap) ->
           let phase = Obs.Metrics.phase_of name in
           if phase <> !last_phase then begin
             last_phase := phase;
             Printf.printf "%s\n" (String.make 53 '-')
           end;
           match snap with
           | Obs.Metrics.S_counter v -> Printf.printf "%-36s %16d\n" name v
           | Obs.Metrics.S_gauge v ->
             Printf.printf "%-36s %16d  (gauge)\n" name v
           | Obs.Metrics.S_histogram h ->
             Printf.printf "%-36s %16d  (n=%d min=%d max=%d)\n" name
               h.Obs.Metrics.hs_sum h.Obs.Metrics.hs_count
               h.Obs.Metrics.hs_min h.Obs.Metrics.hs_max
           | Obs.Metrics.S_wall_histogram h ->
             Printf.printf "%-36s %16d  (wall us; n=%d min=%d max=%d)\n" name
               h.Obs.Metrics.hs_sum h.Obs.Metrics.hs_count
               h.Obs.Metrics.hs_min h.Obs.Metrics.hs_max)
         (Obs.Metrics.snapshot ());
       (match trace with
        | None -> ()
        | Some path ->
          Obs.Trace.write_file path;
          Printf.eprintf "wrote %s\n%!" path);
       0)

(* Deterministic fault-injection campaign: RTL mutation testing of the
   selected kernels plus seeded pipeline-stage faults. The report is a
   pure function of (seed, benchmark list, options) — identical bytes
   for every --jobs value. *)

(* Default campaign set: a cross-suite subset that keeps the default
   invocation under a minute; --all runs the whole suite, --bench
   picks exact benchmarks. *)
let default_fault_benches =
  [ "atax"; "bicg"; "mvt"; "trisolv"; "doitgen"; "fft"; "spmv"; "nw" ]

let faults_cmd seed n_faults max_inv benches all budget stage_benches jobs
    fuel interp cache_dir no_cache json trace =
  apply_jobs jobs;
  apply_fuel fuel;
  apply_interp interp;
  (* accepted for interface uniformity; the campaign recomputes through
     [Memo.Store.without_cache] regardless *)
  apply_cache cache_dir no_cache;
  with_trace trace @@ fun () ->
  with_diagnostics @@ fun () ->
  let resolve names =
    List.fold_left
      (fun acc name ->
        match acc, Suite.find name with
        | Error m, _ -> Error m
        | Ok _, None ->
          Error
            (Printf.sprintf "unknown benchmark %s (try the list command)"
               name)
        | Ok bs, Some b -> Ok (bs @ [ b ]))
      (Ok []) names
  in
  let selected =
    match benches, all with
    | _ :: _, true -> Error "use either --bench or --all, not both"
    | [], true -> Ok Suite.all
    | [], false -> resolve default_fault_benches
    | names, false -> resolve names
  in
  match selected with
  | Error m -> prerr_endline ("cayman: " ^ m); 1
  | Ok benches ->
    let options =
      { Cayman_fault.Campaign.default_options with
        Cayman_fault.Campaign.seed;
        faults_per_kernel = n_faults;
        max_invocations = max_inv;
        budget_ratio = budget;
        stage_benchmarks = stage_benches }
    in
    let report = Cayman_fault.Campaign.run options benches in
    print_string (Cayman_fault.Campaign.to_string report);
    (match json with
     | None -> ()
     | Some path ->
       Obs.Json.write_file path (Cayman_fault.Campaign.to_json report);
       Printf.eprintf "wrote %s\n%!" path);
    let unhandled = Cayman_fault.Campaign.unhandled report in
    if unhandled > 0 then begin
      Printf.eprintf
        "cayman: %d stage fault(s) escaped as raw exceptions (robustness \
         bug)\n"
        unhandled;
      1
    end
    else 0

let run_t =
  Cmd.v (Cmd.info "run" ~doc:"Run the full Cayman flow on a program")
    Term.(const run_cmd $ bench_arg $ file_arg $ budget_arg $ mode_arg
          $ alpha_arg $ jobs_arg $ fuel_arg $ interp_arg $ cache_dir_arg
          $ no_cache_arg $ trace_arg)

let dump_t =
  Cmd.v (Cmd.info "dump" ~doc:"Dump IR, wPST and profile of a program")
    Term.(const dump_cmd $ bench_arg $ file_arg $ fuel_arg $ interp_arg
          $ cache_dir_arg $ no_cache_arg $ trace_arg)

let emit_t =
  Cmd.v
    (Cmd.info "emit"
       ~doc:"Emit Verilog netlists for the selected accelerators")
    Term.(const emit_cmd $ bench_arg $ file_arg $ budget_arg $ out_arg
          $ jobs_arg $ fuel_arg $ interp_arg $ cache_dir_arg $ no_cache_arg
          $ trace_arg)

let cosim_t =
  let mode_arg =
    let doc = "Interface mode: full, coupled-only, scan-only." in
    Arg.(value & opt string "full" & info [ "mode" ] ~doc)
  in
  Cmd.v
    (Cmd.info "cosim"
       ~doc:
         "Differentially co-simulate selected kernel netlists against the \
          golden interpreter (plus a static lint of each netlist)")
    Term.(const cosim_cmd $ bench_arg $ file_arg $ budget_arg $ mode_arg
          $ jobs_arg $ max_inv_arg $ fuel_arg $ interp_arg $ cache_dir_arg
          $ no_cache_arg $ trace_arg)

let faults_t =
  let seed_arg =
    let doc = "Campaign seed; the whole report is a pure function of it." in
    Arg.(value & opt int 42 & info [ "seed" ] ~doc ~docv:"N")
  in
  let n_faults_arg =
    let doc = "RTL faults sampled per benchmark and interface mode." in
    Arg.(value & opt int 9 & info [ "faults" ] ~doc ~docv:"N")
  in
  let max_inv_arg =
    let doc = "Co-simulated invocations per RTL mutant." in
    Arg.(value & opt int 2 & info [ "max-invocations" ] ~doc ~docv:"N")
  in
  let benches_arg =
    let doc =
      "Benchmark to include (repeatable; default: a fast cross-suite \
       subset)."
    in
    Arg.(value & opt_all string [] & info [ "b"; "bench" ] ~doc ~docv:"NAME")
  in
  let all_arg =
    let doc = "Campaign over the whole benchmark suite (slow)." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let stage_arg =
    let doc = "Run pipeline-stage faults on the first $(docv) benchmarks." in
    Arg.(value & opt int 2 & info [ "stage-benchmarks" ] ~doc ~docv:"K")
  in
  let json_arg =
    let doc = "Also write the report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run a deterministic fault-injection campaign: mutate selected \
          kernel netlists (stuck-at, bit-flip, swapped/dropped commits, \
          structural damage) and measure lint + co-simulation detection, \
          then arm seeded faults at every pipeline stage boundary and \
          verify the pipeline degrades instead of crashing")
    Term.(const faults_cmd $ seed_arg $ n_faults_arg $ max_inv_arg
          $ benches_arg $ all_arg $ budget_arg $ stage_arg $ jobs_arg
          $ fuel_arg $ interp_arg $ cache_dir_arg $ no_cache_arg $ json_arg
          $ trace_arg)

let graph_t =
  Cmd.v
    (Cmd.info "graph" ~doc:"Write graphviz dot files (CFGs + wPST)")
    Term.(const graph_cmd $ bench_arg $ file_arg $ out_arg $ cache_dir_arg
          $ no_cache_arg $ trace_arg)

let list_t =
  Cmd.v (Cmd.info "list" ~doc:"List suite benchmarks")
    Term.(const list_cmd $ const ())

let stats_t =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the full flow and print per-phase wall-time and pipeline \
          metrics (region counts, prune/memo hits, design points, DP \
          frontier sizes)")
    Term.(const stats_cmd $ bench_arg $ file_arg $ budget_arg $ mode_arg
          $ alpha_arg $ jobs_arg $ fuel_arg $ interp_arg $ cache_dir_arg
          $ no_cache_arg $ trace_arg)

(* cayman fleet — generate a seeded fleet of MiniC programs, push every
   one through the full compile/profile/select flow, and merge the
   selected accelerators across programs under a shared area budget
   (lib/fleet). The report is byte-identical for every --jobs value. *)

let fleet_cmd kernels seed budget per_budget json jobs fuel interp
    cache_dir no_cache trace =
  apply_jobs jobs;
  apply_fuel fuel;
  apply_interp interp;
  apply_cache cache_dir no_cache;
  with_trace trace @@ fun () ->
  with_diagnostics @@ fun () ->
  let opts =
    { Fleet.Merge.default_options with
      Fleet.Merge.o_kernels = kernels;
      o_seed = seed;
      o_budget = budget;
      o_per_budget = per_budget }
  in
  let r = Fleet.Merge.run opts in
  print_string (Fleet.Merge.report_to_string r);
  (match json with
   | None -> ()
   | Some path ->
     Obs.Json.write_file path (Fleet.Merge.report_to_json r);
     Printf.eprintf "wrote %s\n%!" path);
  0

let fleet_t =
  let kernels_arg =
    let doc = "Number of programs to generate for the fleet." in
    Arg.(value & opt int 100 & info [ "kernels" ] ~doc ~docv:"N")
  in
  let seed_arg =
    let doc =
      "Fleet generator seed; the same seed and size always produce the \
       same fleet and the same report."
    in
    Arg.(value & opt int 42 & info [ "seed" ] ~doc ~docv:"S")
  in
  let fleet_budget_arg =
    let doc =
      "Shared fleet area budget, as a multiple of the CVA6 tile area \
       (the per-program budget stays a fraction of one tile)."
    in
    Arg.(value & opt float 4.0 & info [ "budget" ] ~doc ~docv:"A")
  in
  let per_budget_arg =
    let doc =
      "Per-program selection budget as a fraction of the CVA6 tile area."
    in
    Arg.(value & opt float 0.25 & info [ "per-budget" ] ~doc ~docv:"R")
  in
  let json_arg =
    let doc = "Also write the machine-readable fleet report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Generate a seeded fleet of kernels, run the full flow on each, \
          cluster structurally similar accelerators across programs, and \
          merge them under a shared area budget; reports cross-program \
          area saved versus per-program merging, byte-identically for \
          every job count")
    Term.(const fleet_cmd $ kernels_arg $ seed_arg $ fleet_budget_arg
          $ per_budget_arg $ json_arg $ jobs_arg $ fuel_arg $ interp_arg
          $ cache_dir_arg $ no_cache_arg $ trace_arg)

(* cayman cache {stats,gc,clear} — maintenance for the memoization store.
   These operate on the directory directly (no ambient enable), so they
   work on any store path without arming caching for the process. *)

let cache_target_dir = function
  | Some d -> d
  | None -> Memo.Store.default_dir ()

let cache_stats_cmd cache_dir =
  let dir = cache_target_dir cache_dir in
  if not (Memo.Store.is_store dir) then begin
    Printf.printf "no cache at %s\n" dir;
    0
  end
  else
    match Memo.Store.open_store dir with
    | Error m -> prerr_endline ("cayman: " ^ m); 1
    | Ok store ->
      let s = Memo.Store.stats_of store in
      Printf.printf "cache %s: %d entries, %d bytes (%.1f MiB)\n" dir
        s.Memo.Store.st_entries s.Memo.Store.st_bytes
        (float_of_int s.Memo.Store.st_bytes /. (1024. *. 1024.));
      (* Process-local guard over canonical-region digests: any nonzero
         count here means two structurally different regions hashed to
         the same digest in this process (see Memo.Hash.canon_digest). *)
      Printf.printf "canon-digest collisions (this process): %d\n"
        (Obs.Metrics.value (Obs.Metrics.counter "memo.canon_collisions"));
      0

let cache_gc_cmd cache_dir max_mb =
  let dir = cache_target_dir cache_dir in
  if not (Memo.Store.is_store dir) then begin
    Printf.printf "no cache at %s\n" dir;
    0
  end
  else
    match Memo.Store.open_store dir with
    | Error m -> prerr_endline ("cayman: " ^ m); 1
    | Ok store ->
      let max_bytes =
        match max_mb with
        | Some mb -> mb * 1024 * 1024
        | None -> Memo.Store.default_max_bytes ()
      in
      let evicted, freed = Memo.Store.gc store ~max_bytes in
      Printf.printf "evicted %d entries, freed %d bytes\n" evicted freed;
      0

let cache_clear_cmd cache_dir =
  let dir = cache_target_dir cache_dir in
  if not (Sys.file_exists dir) then begin
    Printf.printf "no cache at %s\n" dir;
    0
  end
  else
    match Memo.Store.clear dir with
    | Ok n -> Printf.printf "removed %d entries from %s\n" n dir; 0
    | Error m -> prerr_endline ("cayman: " ^ m); 1

let cache_t =
  let max_mb_arg =
    let doc =
      "Size cap in MiB for gc (default: CAYMAN_CACHE_MAX_MB, else 2048)."
    in
    Arg.(value & opt (some int) None & info [ "max-mb" ] ~doc ~docv:"MB")
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect and maintain the on-disk memoization cache (distinct \
          from the simulated data cache reported by the ablation-cache \
          bench)")
    [ Cmd.v
        (Cmd.info "stats" ~doc:"Print entry count and total size")
        Term.(const cache_stats_cmd $ cache_dir_arg);
      Cmd.v
        (Cmd.info "gc"
           ~doc:"Evict least-recently-used entries down to the size cap")
        Term.(const cache_gc_cmd $ cache_dir_arg $ max_mb_arg);
      Cmd.v
        (Cmd.info "clear"
           ~doc:
             "Remove all entries (refuses directories that are not a \
              cayman store)")
        Term.(const cache_clear_cmd $ cache_dir_arg);
    ]

(* cayman serve — the persistent compilation daemon. One process, one
   shared engine pool and warm memo layer; many concurrent clients.
   Unlike the one-shot subcommands, the interpreter engine is pinned at
   startup (staged unless --interp says otherwise) so every reply over
   the daemon's lifetime comes from the same engine. *)

let serve_cmd socket stdio jobs fuel interp cache_dir no_cache max_queue
    max_write_buf drain_timeout trace =
  with_trace trace @@ fun () ->
  with_diagnostics @@ fun () ->
  let config =
    { Serve.Server.default_config with
      Serve.Server.sc_jobs = jobs;
      sc_fuel = fuel;
      sc_interp = Some (Option.value interp ~default:Sim.Interp.Staged);
      sc_cache_dir = cache_dir;
      sc_cache = not no_cache;
      sc_max_queue = max_queue;
      sc_max_write_buf = max_write_buf;
      sc_drain_timeout_s = drain_timeout;
      (* a real daemon process: SIGTERM means drain and exit 0 *)
      sc_handle_sigterm = true }
  in
  if stdio then begin
    Serve.Server.serve_fds ~config ~input:Unix.stdin ~output:Unix.stdout ();
    0
  end
  else begin
    Printf.eprintf "cayman: serving on %s (pid %d)\n%!" socket
      (Unix.getpid ());
    Serve.Server.serve_socket ~config socket;
    Printf.eprintf "cayman: serve: shut down cleanly\n%!";
    0
  end

let serve_t =
  let socket_arg =
    let doc =
      "Unix-domain socket path to listen on. A stale leftover socket \
       file is removed; a path another daemon is live on is refused."
    in
    Arg.(value & opt string "cayman.sock" & info [ "socket" ] ~doc ~docv:"PATH")
  in
  let stdio_arg =
    let doc =
      "Serve a single client over stdin/stdout instead of a socket \
       (framing is identical)."
    in
    Arg.(value & flag & info [ "stdio" ] ~doc)
  in
  let max_queue_arg =
    let doc =
      "Pending compute requests admitted before new ones are shed with \
       a structured `overloaded' reply (and retry-after hint)."
    in
    Arg.(value
         & opt int Serve.Server.default_config.Serve.Server.sc_max_queue
         & info [ "max-queue" ] ~doc ~docv:"N")
  in
  let max_write_buf_arg =
    let doc =
      "Per-connection outgoing buffer cap in bytes; a peer that stops \
       reading its replies is disconnected once its backlog would \
       exceed this (must exceed the largest single reply)."
    in
    Arg.(value
         & opt int Serve.Server.default_config.Serve.Server.sc_max_write_buf
         & info [ "max-write-buf" ] ~doc ~docv:"BYTES")
  in
  let drain_timeout_arg =
    let doc =
      "Bound in seconds on the drain phase after `shutdown' or \
       SIGTERM: finish queued batches and flush write buffers, then \
       exit regardless."
    in
    Arg.(value
         & opt float Serve.Server.default_config.Serve.Server.sc_drain_timeout_s
         & info [ "drain-timeout" ] ~doc ~docv:"SECONDS")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent compilation daemon: many concurrent \
          compile/profile/select/cosim requests multiplexed over one \
          shared worker pool and warm memoization layer, each request \
          fuel-budgeted so a bad one degrades to a structured error \
          reply; overload is shed at a bounded queue, slow readers are \
          disconnected at a bounded write buffer, and SIGTERM drains \
          gracefully")
    Term.(const serve_cmd $ socket_arg $ stdio_arg $ jobs_arg $ fuel_arg
          $ interp_arg $ cache_dir_arg $ no_cache_arg $ max_queue_arg
          $ max_write_buf_arg $ drain_timeout_arg $ trace_arg)

(* cayman bench-diff OLD.json NEW.json — regression gate over the mean
   wall times of two bench trajectory files (exit 2 on regression). *)

let bench_diff_cmd old_path new_path max_pct json =
  let read path =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      (match Obs.Json.parse s with
       | Ok j -> Ok j
       | Error m -> Error (Printf.sprintf "%s: %s" path m))
    with Sys_error m -> Error m
  in
  match read old_path, read new_path with
  | Error m, _ | _, Error m -> prerr_endline ("cayman: " ^ m); 1
  | Ok old_doc, Ok new_doc ->
    let r = Obs.Benchdiff.diff ~max_regress_pct:max_pct old_doc new_doc in
    print_string (Obs.Benchdiff.to_string ~max_regress_pct:max_pct r);
    (match json with
     | None -> ()
     | Some path ->
       Obs.Json.write_file path
         (Obs.Benchdiff.to_json
            ?old_source:(Obs.Benchdiff.source old_doc)
            ?new_source:(Obs.Benchdiff.source new_doc)
            ~max_regress_pct:max_pct r);
       Printf.eprintf "wrote %s\n%!" path);
    if Obs.Benchdiff.ok r then 0 else 2

let bench_diff_t =
  let old_arg =
    Arg.(required
         & pos 0 (some file) None
         & info [] ~docv:"OLD.json" ~doc:"Baseline trajectory file.")
  in
  let new_arg =
    Arg.(required
         & pos 1 (some file) None
         & info [] ~docv:"NEW.json" ~doc:"Candidate trajectory file.")
  in
  let max_pct_arg =
    let doc =
      "Allowed mean wall-time growth per phase, in percent; anything \
       beyond is a regression."
    in
    Arg.(value & opt float 25.0 & info [ "max-regress-pct" ] ~doc ~docv:"PCT")
  in
  let json_arg =
    let doc =
      "Also write the machine-readable report (per-phase old/new/delta, \
       regression verdicts) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare the mean wall times of two BENCH_*.json trajectory \
          files phase by phase and exit nonzero when any shared phase \
          regressed beyond the threshold (schedule-dependent gauges and \
          percentiles are ignored)")
    Term.(const bench_diff_cmd $ old_arg $ new_arg $ max_pct_arg $ json_arg)

(* cayman top / cayman logs — observe a running daemon through the
   telemetry and log-tail control verbs. Both are pure clients: they
   never touch the pipeline, so pointing them at a busy daemon costs
   one inline control reply per poll. *)

let daemon_socket_arg =
  let doc = "Unix-domain socket of the daemon to observe." in
  Arg.(value & opt string "cayman.sock" & info [ "socket" ] ~doc ~docv:"PATH")

let with_daemon socket f =
  match Serve.Client.connect socket with
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "cayman: cannot connect to %s: %s (is the daemon up?)\n"
      socket (Unix.error_message e);
    1
  | client ->
    Fun.protect ~finally:(fun () -> Serve.Client.close client) @@ fun () ->
    (try f client
     with End_of_file ->
       prerr_endline "cayman: daemon hung up";
       1)

(* Exposition lookups against the family names the daemon renders
   (Obs.Expose.of_snapshot over the serve metrics). *)
let fam_float fams name suffix =
  Option.bind (Obs.Expose.find fams name) (fun f ->
      Option.map Obs.Expose.to_float (Obs.Expose.sample_value f suffix))

let fam_quantile fams name q =
  Option.bind (Obs.Expose.find fams name) (fun f ->
      Option.map Obs.Expose.to_float
        (Obs.Expose.sample_value f ~labels:[ "quantile", q ] ""))

let render_top ~socket fams =
  let b = Buffer.create 1024 in
  let v name suffix = Option.value ~default:0.0 (fam_float fams name suffix) in
  let q name quant =
    Option.value ~default:0.0 (fam_quantile fams name quant)
  in
  let requests = v "cayman_serve_requests_total" "" in
  let errors = v "cayman_serve_errors_total" "" in
  let hits = v "cayman_serve_cache_hits_total" "" in
  let misses = v "cayman_serve_cache_misses_total" "" in
  let hit_pct =
    if hits +. misses > 0.0 then 100.0 *. hits /. (hits +. misses) else 0.0
  in
  Printf.bprintf b "cayman top — %s\n" socket;
  Printf.bprintf b
    "totals   %.0f requests   %.0f errors   cache %.1f%% hit (%.0f/%.0f)\n"
    requests errors hit_pct hits (hits +. misses);
  Printf.bprintf b "now      queue %.0f   inflight %.0f   write-buf %.0fB \
                    (hwm %.0fB)\n"
    (v "cayman_serve_queue_depth" "")
    (v "cayman_serve_inflight" "")
    (v "cayman_serve_write_buf_bytes" "")
    (v "cayman_serve_write_buf_hwm" "");
  Printf.bprintf b
    "overload %.0f shed   %.0f deadline-expired   %.0f slow-client \
     disconnects\n"
    (v "cayman_serve_shed_total" "")
    (v "cayman_serve_deadline_expired_total" "")
    (v "cayman_serve_slow_client_disconnects_total" "");
  let wname = "cayman_window_serve_latency_us" in
  Printf.bprintf b
    "window   %.1fs span   %.1f req/s   %.0f errors   latency p50 %.0fus \
     p95 %.0fus p99 %.0fus\n"
    (v "cayman_window_serve_requests" "_span_seconds")
    (v "cayman_window_serve_requests" "_rate")
    (v "cayman_window_serve_errors" "_count")
    (q wname "0.5") (q wname "0.95") (q wname "0.99");
  Buffer.add_char b '\n';
  Printf.bprintf b "%-16s %10s %10s %10s %10s\n" "verb" "req/s" "count"
    "p50 us" "p99 us";
  let prefix = "cayman_window_serve_verb_" in
  let req_suffix = "_requests" in
  List.iter
    (fun (f : Obs.Expose.family) ->
      let n = f.Obs.Expose.f_name in
      if
        String.length n > String.length prefix + String.length req_suffix
        && String.sub n 0 (String.length prefix) = prefix
        && String.ends_with ~suffix:req_suffix n
      then begin
        let verb =
          String.sub n (String.length prefix)
            (String.length n - String.length prefix - String.length req_suffix)
        in
        let lat = prefix ^ verb ^ "_latency_us" in
        let count = v n "_count" in
        if count > 0.0 then
          Printf.bprintf b "%-16s %10.1f %10.0f %10.0f %10.0f\n" verb
            (v n "_rate") count (q lat "0.5") (q lat "0.99")
      end)
    fams;
  Buffer.contents b

let top_cmd socket interval iterations raw =
  with_daemon socket @@ fun client ->
  let tty = Unix.isatty Unix.stdout in
  let looping = iterations <> 1 in
  let rec loop i =
    let reply = Serve.Client.telemetry client in
    if not reply.Serve.Protocol.rp_ok then begin
      Printf.eprintf "cayman: telemetry error: %s\n"
        reply.Serve.Protocol.rp_output;
      1
    end
    else
      match Obs.Expose.parse reply.Serve.Protocol.rp_output with
      | Error m ->
        Printf.eprintf "cayman: telemetry reply did not parse: %s\n" m;
        1
      | Ok fams ->
        if tty && looping && i > 0 then print_string "\027[2J\027[H";
        if raw then print_string reply.Serve.Protocol.rp_output
        else print_string (render_top ~socket fams);
        flush stdout;
        if iterations > 0 && i + 1 >= iterations then 0
        else begin
          Unix.sleepf interval;
          loop (i + 1)
        end
  in
  loop 0

let format_log_event j =
  let member = Obs.Json.member in
  let t =
    Option.value ~default:0.0 (Option.bind (member "t" j) Obs.Json.to_float)
  in
  let str name =
    Option.value ~default:"?"
      (Option.bind (member name j) Obs.Json.to_string_opt)
  in
  let fields =
    match member "fields" j with Some (Obs.Json.Obj kvs) -> kvs | _ -> []
  in
  let field_str (k, v) =
    let vs =
      match v with
      | Obs.Json.String s -> s
      | Obs.Json.Int n -> string_of_int n
      | Obs.Json.Float f -> Printf.sprintf "%g" f
      | Obs.Json.Bool b -> string_of_bool b
      | Obs.Json.Null | Obs.Json.List _ | Obs.Json.Obj _ -> "?"
    in
    Printf.sprintf "%s=%s" k vs
  in
  Printf.sprintf "%10.3f %-5s %s  %s" t
    (String.uppercase_ascii (str "level"))
    (str "msg")
    (String.concat " " (List.map field_str fields))

let logs_cmd socket tail follow interval =
  with_daemon socket @@ fun client ->
  (* Events are deduplicated by their monotone id, so --follow polling
     reprints nothing; a burst larger than the polled tail between two
     polls is lost (the daemon's ring forgets it too). *)
  let last_id = ref 0 in
  let print_batch reply =
    if not reply.Serve.Protocol.rp_ok then begin
      Printf.eprintf "cayman: log-tail error: %s\n"
        reply.Serve.Protocol.rp_output;
      false
    end
    else
      match Obs.Json.parse reply.Serve.Protocol.rp_output with
      | Error m ->
        Printf.eprintf "cayman: log-tail reply did not parse: %s\n" m;
        false
      | Ok j ->
        let events =
          match Obs.Json.member "events" j with
          | Some (Obs.Json.List l) -> l
          | _ -> []
        in
        List.iter
          (fun e ->
            let id =
              Option.value ~default:0
                (Option.bind (Obs.Json.member "id" e) Obs.Json.to_int)
            in
            if id > !last_id then begin
              last_id := id;
              print_endline (format_log_event e)
            end)
          events;
        flush stdout;
        true
  in
  let rec loop first =
    let reply = Serve.Client.log_tail client ~n:tail () in
    if not (print_batch reply) then 1
    else if follow then begin
      Unix.sleepf interval;
      loop false
    end
    else (ignore first; 0)
  in
  loop true

let top_t =
  let interval_arg =
    let doc = "Seconds between telemetry polls." in
    Arg.(value & opt float 2.0 & info [ "interval" ] ~doc ~docv:"SECONDS")
  in
  let iterations_arg =
    let doc = "Stop after $(docv) frames (0 = run until interrupted)." in
    Arg.(value & opt int 0 & info [ "iterations" ] ~doc ~docv:"N")
  in
  let raw_arg =
    let doc =
      "Print the raw Prometheus-style exposition text instead of the \
       dashboard (still validated through the parser)."
    in
    Arg.(value & flag & info [ "raw" ] ~doc)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running daemon: per-verb request rates, \
          rolling latency percentiles, queue depth and cache hit rate, \
          polled from the telemetry control verb")
    Term.(const top_cmd $ daemon_socket_arg $ interval_arg $ iterations_arg
          $ raw_arg)

let logs_t =
  let tail_n_arg =
    let doc = "Number of audit records to fetch per poll." in
    Arg.(value & opt int 20 & info [ "tail" ] ~doc ~docv:"N")
  in
  let follow_arg =
    let doc = "Keep polling and print only records not seen yet." in
    Arg.(value & flag & info [ "follow" ] ~doc)
  in
  let interval_arg =
    let doc = "Seconds between polls with --follow." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~doc ~docv:"SECONDS")
  in
  Cmd.v
    (Cmd.info "logs"
       ~doc:
         "Print a running daemon's structured audit log (one record per \
          answered request: verb, outcome, fuel, wall time, cache \
          hit/miss), optionally following it")
    Term.(const logs_cmd $ daemon_socket_arg $ tail_n_arg $ follow_arg
          $ interval_arg)

let main =
  Cmd.group
    (Cmd.info "cayman" ~version:"1.0.0"
       ~doc:"Custom accelerator generation with control flow and data access \
             optimization")
    [ run_t; dump_t; emit_t; cosim_t; faults_t; graph_t; list_t; stats_t;
      fleet_t; cache_t; serve_t; top_t; logs_t; bench_diff_t ]

let () = exit (Cmd.eval' main)
